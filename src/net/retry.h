// At-least-once delivery with server-side dedup = exactly-once absorption.
//
// RetrySender is the fault-tolerant counterpart of MultiSender: one
// blocking connection, sequence-numbered frames, and a retransmit loop
// driven by the collector's ack frames (wire/wire.h, FrameType::kAck).
// Every frame is stamped with (epoch, seq) before its first send; a frame
// stays in the unacked window and is retransmitted VERBATIM — same epoch,
// same seq, same bytes — across reconnects until its ack arrives. The
// collector's SequenceTracker (serve/collector.h) absorbs each (epoch,
// seq) exactly once and re-acks duplicates, so a retransmit race can
// never double-count a report. The guarantee survives a collector
// restart: the WAL replays claimed ids back into the tracker before the
// retransmit arrives.
//
// Failure handling: a send failure, an injected fault (net/fault.h), a
// mid-stream close, or an ack timeout all tear down the connection and
// enter the reconnect path — exponential backoff (base·2^k, capped) plus
// seeded jitter, dialing endpoints round-robin by attempt (the failover
// list), then retransmitting the entire unacked window in seq order. The
// total deadline bounds the whole session; exceeding it is a typed
// OutOfRange error with the number of frames still unacked.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "net/fault.h"
#include "net/socket.h"
#include "serve/framing.h"

namespace numdist::net {

struct RetryOptions {
  /// Connection epoch stamped on every frame. Distinct senders MUST use
  /// distinct epochs (the dedup window is keyed by (epoch, seq)); a
  /// sender resuming after its own crash reuses its old epoch so its
  /// retransmits dedup against what the collector already absorbed.
  uint64_t epoch = 1;
  /// Max connection attempts, 0 = unbounded (the deadline governs).
  uint32_t max_attempts = 0;
  /// Backoff before reconnect attempt k: min(max, base·2^k) + jitter ms.
  uint32_t base_backoff_ms = 5;
  uint32_t max_backoff_ms = 1000;
  /// Hard ceiling on the whole session, first Send to last ack.
  uint32_t total_deadline_ms = 30000;
  /// A full window / Finish waits this long for one ack before declaring
  /// the connection dead and retransmitting.
  uint32_t ack_timeout_ms = 2000;
  /// Max unacked frames before Send blocks waiting for acks.
  size_t window = 32;
  /// Seeds the backoff jitter (deterministic tests).
  uint64_t jitter_seed = 1;
  /// Optional injected-fault script; attempt k of this sender uses the
  /// plan's attempt-k events. Null = clean writes.
  const FaultPlan* faults = nullptr;
};

struct RetryStats {
  uint64_t frames = 0;       ///< distinct frames handed to Send
  uint64_t acks = 0;         ///< acks that retired an unacked frame
  uint64_t retransmits = 0;  ///< frame re-sends after a reconnect
  uint64_t reconnects = 0;   ///< connections dialed beyond the first
  uint64_t injected_faults = 0;  ///< scripted faults fired (net/fault.h)
};

/// \brief Sequence-stamped, ack-driven, retrying frame sender.
class RetrySender {
 public:
  /// `endpoints` is the failover list: attempt k dials
  /// endpoints[k % size]. Dialing is lazy (first Send connects), so a
  /// collector started concurrently with its clients wins the race.
  static Result<RetrySender> Make(std::vector<Endpoint> endpoints,
                                  RetryOptions options);

  RetrySender(RetrySender&&) = default;
  RetrySender& operator=(RetrySender&&) = default;

  /// Stamps the next (epoch, seq) onto `frame` and delivers it, blocking
  /// while the unacked window is full. The frame must be a report or
  /// sketch frame without an existing sequence block.
  Status Send(std::string_view frame);

  /// Blocks until every sent frame is acked (retransmitting as needed),
  /// then closes the connection cleanly. The sender is unusable after.
  Status Finish();

  const RetryStats& stats() const { return stats_; }
  /// Frames sent but not yet acked (0 after a successful Finish).
  size_t unacked() const { return unacked_.size(); }

 private:
  RetrySender(std::vector<Endpoint> endpoints, RetryOptions options)
      : endpoints_(std::move(endpoints)),
        options_(options),
        jitter_(options.jitter_seed) {}

  /// Milliseconds left before the total deadline (<= 0 = expired).
  int64_t RemainingMs() const;
  /// Typed deadline error naming the unacked count.
  Status DeadlineExceeded() const;
  /// Dials the next endpoint (with backoff for attempts beyond the
  /// first) and retransmits the unacked window; loops until a dial +
  /// retransmit succeeds or attempts/deadline run out.
  Status ReconnectAndRetransmit();
  /// Writes one prefixed frame through the connection's fault-injecting
  /// writer; any failure tears down the connection and reconnects (which
  /// retransmits this frame too — it is already in the window).
  Status Deliver(const std::string& framed);
  /// Folds the live writer's fired-fault count into stats_ (delta-based,
  /// so it is safe to call after every write).
  void SyncInjected();
  /// Closes the connection and retires its writer (syncing stats first).
  void DropConnection();
  /// Reads acks for up to timeout_ms; `*progressed` reports whether any
  /// unacked frame was retired. A dead connection is handled inside
  /// (reconnect + retransmit), not surfaced.
  Status PumpAcks(int timeout_ms, bool* progressed);

  std::vector<Endpoint> endpoints_;
  RetryOptions options_;
  Rng jitter_;
  /// Heap-held so its address survives moves of the sender — the live
  /// FaultyWriter keeps a pointer to it for the connection's lifetime.
  std::unique_ptr<Fd> fd_ = std::make_unique<Fd>();
  /// One writer per connection attempt: fault-script offsets address the
  /// attempt's CUMULATIVE stream, so the writer (and its offset) must
  /// outlive individual Deliver calls.
  std::optional<FaultyWriter> writer_;
  /// Portion of writer_->injected() already folded into stats_.
  uint64_t writer_credited_ = 0;
  serve::FrameDecoder decoder_;  // reset per connection
  uint32_t attempts_ = 0;        // connections dialed so far
  uint64_t next_seq_ = 1;
  /// seq -> length-prefixed stamped frame bytes (retransmit verbatim).
  std::map<uint64_t, std::string> unacked_;
  RetryStats stats_;
  std::chrono::steady_clock::time_point start_{};
  bool started_ = false;
};

}  // namespace numdist::net
