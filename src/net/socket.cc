#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>

namespace numdist::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal("net: " + what + " failed (" +
                          std::strerror(errno) + ")");
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<Endpoint> ParseEndpoint(std::string_view spec) {
  Endpoint endpoint;
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kTcp;
    std::string_view rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    std::string_view port_part = rest;
    if (colon != std::string_view::npos) {
      endpoint.host = std::string(rest.substr(0, colon));
      port_part = rest.substr(colon + 1);
    }
    if (port_part.empty()) {
      return Status::InvalidArgument("net: '" + std::string(spec) +
                                     "' is missing a port");
    }
    uint32_t port = 0;
    for (char c : port_part) {
      if (c < '0' || c > '9' || port > 65535) {
        return Status::InvalidArgument("net: bad port in '" +
                                       std::string(spec) + "'");
      }
      port = port * 10 + static_cast<uint32_t>(c - '0');
    }
    if (port > 65535) {
      return Status::InvalidArgument("net: bad port in '" +
                                     std::string(spec) + "'");
    }
    endpoint.port = static_cast<uint16_t>(port);
    return endpoint;
  }
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = std::string(spec.substr(5));
    if (endpoint.path.empty()) {
      return Status::InvalidArgument("net: '" + std::string(spec) +
                                     "' is missing a socket path");
    }
    if (endpoint.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument("net: unix socket path longer than " +
                                     std::to_string(
                                         sizeof(sockaddr_un{}.sun_path) - 1) +
                                     " bytes");
    }
    return endpoint;
  }
  return Status::InvalidArgument(
      "net: expected tcp:PORT, tcp:HOST:PORT, or unix:PATH, got '" +
      std::string(spec) + "'");
}

std::string EndpointName(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    return "unix:" + endpoint.path;
  }
  return "tcp:" + (endpoint.host.empty() ? "0.0.0.0" : endpoint.host) + ":" +
         std::to_string(endpoint.port);
}

namespace {

// Fills a sockaddr for `endpoint`; `for_listen` picks INADDR_ANY vs
// loopback when the host is unspecified.
Status FillSockaddr(const Endpoint& endpoint, bool for_listen,
                    sockaddr_storage* storage, socklen_t* len) {
  std::memset(storage, 0, sizeof(*storage));
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    std::strncpy(sun->sun_path, endpoint.path.c_str(),
                 sizeof(sun->sun_path) - 1);
    *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  endpoint.path.size() + 1);
    return Status::OK();
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(endpoint.port);
  if (endpoint.host.empty()) {
    sin->sin_addr.s_addr = htonl(for_listen ? INADDR_ANY : INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, endpoint.host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("net: '" + endpoint.host +
                                   "' is not a numeric IPv4 address");
  }
  *len = sizeof(sockaddr_in);
  return Status::OK();
}

}  // namespace

Result<Fd> ListenOn(const Endpoint& endpoint, int backlog) {
  const int family =
      endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  Fd fd(socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
        0) {
      return Errno("setsockopt(SO_REUSEADDR)");
    }
  } else {
    ::unlink(endpoint.path.c_str());  // stale socket file from a dead run
  }
  sockaddr_storage addr;
  socklen_t addr_len = 0;
  NUMDIST_RETURN_NOT_OK(FillSockaddr(endpoint, /*for_listen=*/true, &addr,
                                     &addr_len));
  if (bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), addr_len) < 0) {
    return Errno("bind to " + EndpointName(endpoint));
  }
  if (listen(fd.get(), backlog) < 0) {
    return Errno("listen on " + EndpointName(endpoint));
  }
  return fd;
}

Result<Endpoint> LocalEndpoint(int fd, Endpoint::Kind kind) {
  sockaddr_storage addr;
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    return Errno("getsockname");
  }
  Endpoint endpoint;
  endpoint.kind = kind;
  if (kind == Endpoint::Kind::kUnix) {
    endpoint.path = reinterpret_cast<sockaddr_un*>(&addr)->sun_path;
    return endpoint;
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(&addr);
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &sin->sin_addr, host, sizeof(host));
  endpoint.host = host;
  endpoint.port = ntohs(sin->sin_port);
  // A wildcard bind has no single dialable address; report loopback, the
  // only interface the in-repo tools and tests ever dial.
  if (endpoint.host == "0.0.0.0") endpoint.host = "127.0.0.1";
  return endpoint;
}

Result<Fd> Dial(const Endpoint& endpoint) {
  const int family =
      endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  Fd fd(socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_storage addr;
  socklen_t addr_len = 0;
  NUMDIST_RETURN_NOT_OK(FillSockaddr(endpoint, /*for_listen=*/false, &addr,
                                     &addr_len));
  int rc;
  do {
    rc = connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), addr_len);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("connect to " + EndpointName(endpoint));
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t wrote = write(fd, bytes.data() + off, bytes.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    off += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

}  // namespace numdist::net
