#include "net/retry.h"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "wire/wire.h"

namespace numdist::net {

namespace {

using Clock = std::chrono::steady_clock;

void SleepMs(uint64_t ms) {
  if (ms == 0) return;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000L);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

Result<RetrySender> RetrySender::Make(std::vector<Endpoint> endpoints,
                                      RetryOptions options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("retry: the failover list is empty");
  }
  if (options.window == 0) {
    return Status::InvalidArgument("retry: the ack window must hold at "
                                   "least one frame");
  }
  return RetrySender(std::move(endpoints), options);
}

int64_t RetrySender::RemainingMs() const {
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - start_)
                           .count();
  return static_cast<int64_t>(options_.total_deadline_ms) - elapsed;
}

Status RetrySender::DeadlineExceeded() const {
  return Status::OutOfRange(
      "retry: total deadline of " +
      std::to_string(options_.total_deadline_ms) + " ms exceeded with " +
      std::to_string(unacked_.size()) + " frame(s) unacked");
}

void RetrySender::SyncInjected() {
  if (!writer_) return;
  stats_.injected_faults += writer_->injected() - writer_credited_;
  writer_credited_ = writer_->injected();
}

void RetrySender::DropConnection() {
  SyncInjected();
  writer_.reset();
  writer_credited_ = 0;
  fd_->reset();
}

Status RetrySender::ReconnectAndRetransmit() {
  for (;;) {
    DropConnection();
    if (options_.max_attempts > 0 && attempts_ >= options_.max_attempts) {
      return Status::OutOfRange(
          "retry: gave up after " + std::to_string(attempts_) +
          " connection attempt(s) with " + std::to_string(unacked_.size()) +
          " frame(s) unacked");
    }
    if (RemainingMs() <= 0) return DeadlineExceeded();
    if (attempts_ > 0) {
      // Exponential backoff with seeded jitter: capped base·2^k plus a
      // uniform draw, so colliding clients decorrelate deterministically.
      const uint32_t k = std::min<uint32_t>(stats_.reconnects, 20);
      const uint64_t base =
          std::min<uint64_t>(options_.max_backoff_ms,
                             static_cast<uint64_t>(options_.base_backoff_ms)
                                 << k);
      SleepMs(base + jitter_.UniformInt(options_.base_backoff_ms + 1));
      ++stats_.reconnects;
    }
    const Endpoint& target = endpoints_[attempts_ % endpoints_.size()];
    const uint32_t attempt = attempts_++;
    Result<Fd> dialed = Dial(target);
    if (!dialed.ok()) continue;  // backoff, try the next endpoint
    *fd_ = std::move(dialed).value();
    decoder_ = serve::FrameDecoder();
    // One writer per connection: the fault script addresses the attempt's
    // cumulative byte stream, so the same writer must also carry later
    // Deliver calls on this connection. Any failure (injected or real)
    // loops back around.
    writer_.emplace(fd_.get(), options_.faults, attempt);
    writer_credited_ = 0;
    bool ok = true;
    for (const auto& [seq, framed] : unacked_) {
      if (!writer_->Write(framed).ok()) {
        ok = false;
        break;
      }
      // The very first connection's pushes are first transmissions, not
      // retransmits.
      if (attempt > 0) ++stats_.retransmits;
    }
    SyncInjected();
    if (ok) return Status::OK();
  }
}

Status RetrySender::Deliver(const std::string& framed) {
  if (!started_) {
    started_ = true;
    start_ = Clock::now();
  }
  if (fd_->valid() && writer_) {
    // Reuse the connection's writer so scripted fault offsets keep
    // accumulating across frames within this attempt.
    const Status wrote = writer_->Write(framed);
    SyncInjected();
    if (wrote.ok()) return Status::OK();
  }
  // First frame, a dead fd, or a failed write: (re)connect and push the
  // whole window — `framed` is already in unacked_, so it rides along.
  return ReconnectAndRetransmit();
}

Status RetrySender::PumpAcks(int timeout_ms, bool* progressed) {
  *progressed = false;
  if (!fd_->valid()) {
    NUMDIST_RETURN_NOT_OK(ReconnectAndRetransmit());
  }
  struct pollfd pfd = {.fd = fd_->get(), .events = POLLIN, .revents = 0};
  for (;;) {
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("retry: poll failed (") +
                              std::strerror(errno) + ")");
    }
    if (ready == 0) return Status::OK();  // timeout; caller decides
    break;
  }
  char buf[16 * 1024];
  const ssize_t got = recv(fd_->get(), buf, sizeof(buf), 0);
  if (got < 0) {
    if (errno == EINTR) return Status::OK();
    // ECONNRESET etc.: the connection died under us; rebuild it.
    return ReconnectAndRetransmit();
  }
  if (got == 0) {
    // The collector closed while frames are still unacked: mid-stream
    // close, handled by reconnecting (a clean Finish never reaches here
    // with an empty window).
    return ReconnectAndRetransmit();
  }
  const Status fed = decoder_.Feed(std::string_view(buf, got));
  if (!fed.ok()) return fed;  // a hostile ack stream is not retryable
  std::string frame;
  while (decoder_.Next(&frame)) {
    Result<wire::FrameSeq> ack = wire::DecodeAckFrame(frame);
    if (!ack.ok()) return ack.status();
    if (ack.value().epoch != options_.epoch) continue;  // stale epoch
    if (unacked_.erase(ack.value().seq) > 0) {
      ++stats_.acks;
      *progressed = true;
    }
    // else: an ack for an already retired frame (duplicate re-ack) — fine.
  }
  return Status::OK();
}

Status RetrySender::Send(std::string_view frame) {
  while (unacked_.size() >= options_.window) {
    bool progressed = false;
    NUMDIST_RETURN_NOT_OK(
        PumpAcks(static_cast<int>(options_.ack_timeout_ms), &progressed));
    if (!progressed) {
      if (RemainingMs() <= 0) return DeadlineExceeded();
      // A full ack timeout with no progress: assume the connection (or
      // the collector behind it) wedged; rebuild and retransmit.
      NUMDIST_RETURN_NOT_OK(ReconnectAndRetransmit());
    }
  }
  std::string stamped(frame);
  const uint64_t seq = next_seq_++;
  NUMDIST_RETURN_NOT_OK(wire::StampSequenceContext(
      &stamped, wire::FrameSeq{.epoch = options_.epoch, .seq = seq}));
  std::string framed;
  framed.reserve(sizeof(uint32_t) + stamped.size());
  serve::AppendFramePrefix(stamped.size(), &framed);
  framed.append(stamped);
  auto [it, inserted] = unacked_.emplace(seq, std::move(framed));
  (void)inserted;
  ++stats_.frames;
  NUMDIST_RETURN_NOT_OK(Deliver(it->second));
  // Opportunistic drain so the window empties while the pipe is busy.
  bool progressed = false;
  return PumpAcks(0, &progressed);
}

Status RetrySender::Finish() {
  while (!unacked_.empty()) {
    bool progressed = false;
    NUMDIST_RETURN_NOT_OK(
        PumpAcks(static_cast<int>(options_.ack_timeout_ms), &progressed));
    if (progressed) continue;
    if (RemainingMs() <= 0) return DeadlineExceeded();
    NUMDIST_RETURN_NOT_OK(ReconnectAndRetransmit());
  }
  // Every frame acked: a plain close gives the collector its clean EOF.
  DropConnection();
  return Status::OK();
}

}  // namespace numdist::net
