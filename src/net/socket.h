// Socket primitives for the event-loop collector: an owning fd handle,
// endpoint parsing ("tcp:PORT", "tcp:HOST:PORT", "unix:PATH"), and the
// listen/dial calls everything in src/net/ builds on. Numeric addresses
// only — this layer deliberately has no resolver; a deployment that needs
// DNS resolves before it gets here.
//
// Listeners come back non-blocking (they feed the epoll Reactor); dialed
// client sockets come back blocking (callers that multiplex flip them with
// SetNonBlocking). Everything is CLOEXEC so collector children never
// inherit live sockets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace numdist::net {

/// \brief Owning file-descriptor handle (move-only, closes on destroy).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the held fd (if any) and takes ownership of `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// \brief One listen/connect address: TCP (numeric host + port) or a
/// Unix-domain socket path.
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  /// TCP only. Empty means "all interfaces" for listening and loopback
  /// for dialing.
  std::string host;
  uint16_t port = 0;  ///< TCP only; 0 asks the kernel for an ephemeral port.
  std::string path;   ///< Unix only.
};

/// Parses "tcp:PORT", "tcp:HOST:PORT", or "unix:PATH". Typed
/// InvalidArgument on anything else (unknown scheme, non-numeric port,
/// empty path).
Result<Endpoint> ParseEndpoint(std::string_view spec);

/// Canonical rendering, e.g. "tcp:127.0.0.1:8471" or "unix:/tmp/c.sock".
/// ParseEndpoint(EndpointName(e)) round-trips.
std::string EndpointName(const Endpoint& endpoint);

/// Creates a non-blocking listening socket on `endpoint`. TCP listeners
/// set SO_REUSEADDR; Unix listeners unlink a stale socket file first (two
/// live listeners on one path is a deployment error the bind still
/// catches). Use LocalEndpoint to learn the bound port when it was 0.
Result<Fd> ListenOn(const Endpoint& endpoint, int backlog = 512);

/// The address a bound socket actually listens on (resolves port 0).
Result<Endpoint> LocalEndpoint(int fd, Endpoint::Kind kind);

/// Blocking connect to `endpoint`; the returned fd is blocking.
Result<Fd> Dial(const Endpoint& endpoint);

/// Switches an fd to non-blocking mode.
Status SetNonBlocking(int fd);

/// Writes all of `bytes` to a blocking fd (retrying short writes/EINTR).
Status WriteAll(int fd, std::string_view bytes);

}  // namespace numdist::net
