// Multiplexed frame sender: the client half of the event-loop transport.
// Opens N non-blocking connections to one collector endpoint and
// round-robins frames across them, buffering per connection and flushing
// via EPOLLOUT readiness — one thread drives thousands of connections,
// which is how report_client --connections and bench/net_throughput put a
// 10k-connection load on a collector without 10k threads.
//
// Frame order across connections is intentionally unspecified: the
// collector's determinism contract (net/server.h) makes the aggregate
// byte-identical for every interleaving, so the client is free to pick
// whatever the kernel accepts fastest.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/reactor.h"
#include "net/socket.h"

namespace numdist::net {

/// \brief N-connection round-robin frame writer over one Reactor.
class MultiSender {
 public:
  /// Dials `connections` sockets to `endpoint`. `max_buffered` caps the
  /// total unsent bytes across all connections; Send blocks (pumping the
  /// reactor) once the cap is hit, so memory stays bounded when the
  /// collector applies backpressure.
  static Result<MultiSender> Make(const Endpoint& endpoint,
                                  size_t connections,
                                  size_t max_buffered = 16u << 20);

  MultiSender(MultiSender&&) = default;
  MultiSender& operator=(MultiSender&&) = default;
  ~MultiSender();

  /// Queues `frame` (payload only — the u32 length prefix is added here)
  /// on the next connection in round-robin order and flushes
  /// opportunistically. Blocks only when `max_buffered` is exceeded.
  Status Send(std::string_view frame);

  /// Flushes every connection to empty, then closes them all (the
  /// collector sees N clean EOFs). The sender is unusable afterwards.
  Status Finish();

  size_t connections() const { return conns_.size(); }

 private:
  struct Conn {
    Fd fd;
    std::string buf;
    size_t off = 0;          ///< bytes of buf already written
    bool want_write = false; ///< registered for EPOLLOUT
  };

  MultiSender(Reactor reactor, size_t max_buffered)
      : reactor_(std::move(reactor)), max_buffered_(max_buffered) {}

  /// Writes as much of conn's buffer as the kernel accepts; registers or
  /// clears EPOLLOUT interest to match what remains.
  Status TryFlush(Conn* conn);
  /// One reactor round: flush every writable connection.
  Status PumpOnce();

  Reactor reactor_;
  size_t max_buffered_;
  std::vector<std::unique_ptr<Conn>> conns_;
  size_t next_ = 0;
  size_t total_buffered_ = 0;
};

}  // namespace numdist::net
