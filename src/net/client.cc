#include "net/client.h"

#include <sys/epoll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/bytes.h"

namespace numdist::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string("net: ") + what + " failed (" +
                          std::strerror(errno) + ")");
}

}  // namespace

Result<MultiSender> MultiSender::Make(const Endpoint& endpoint,
                                      size_t connections,
                                      size_t max_buffered) {
  if (connections == 0) {
    return Status::InvalidArgument("net: MultiSender needs >= 1 connection");
  }
  NUMDIST_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Make());
  MultiSender sender(std::move(reactor), max_buffered);
  sender.conns_.reserve(connections);
  for (size_t i = 0; i < connections; ++i) {
    auto conn = std::make_unique<Conn>();
    NUMDIST_ASSIGN_OR_RETURN(conn->fd, Dial(endpoint));
    NUMDIST_RETURN_NOT_OK(SetNonBlocking(conn->fd.get()));
    // Registered with no interest; EPOLLOUT is added only while a buffer
    // is blocked on the kernel.
    NUMDIST_RETURN_NOT_OK(sender.reactor_.Add(conn->fd.get(), 0, conn.get()));
    sender.conns_.push_back(std::move(conn));
  }
  return sender;
}

MultiSender::~MultiSender() = default;

Status MultiSender::TryFlush(Conn* conn) {
  while (conn->off < conn->buf.size()) {
    // MSG_NOSIGNAL: a collector that dropped this connection surfaces as
    // EPIPE here, not as a process-killing SIGPIPE.
    const ssize_t wrote =
        send(conn->fd.get(), conn->buf.data() + conn->off,
             conn->buf.size() - conn->off, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return Errno("send");
    }
    conn->off += static_cast<size_t>(wrote);
    total_buffered_ -= static_cast<size_t>(wrote);
  }
  if (conn->off >= conn->buf.size()) {
    conn->buf.clear();
    conn->off = 0;
  } else if (conn->off > (64u << 10) && conn->off >= conn->buf.size() / 2) {
    conn->buf.erase(0, conn->off);
    conn->off = 0;
  }
  const bool blocked = !conn->buf.empty();
  if (blocked != conn->want_write) {
    NUMDIST_RETURN_NOT_OK(reactor_.Mod(
        conn->fd.get(), blocked ? static_cast<uint32_t>(EPOLLOUT) : 0, conn));
    conn->want_write = blocked;
  }
  return Status::OK();
}

Status MultiSender::PumpOnce() {
  Reactor::Event events[128];
  NUMDIST_ASSIGN_OR_RETURN(const size_t n,
                           reactor_.Wait(std::span<Reactor::Event>(events),
                                         /*timeout_ms=*/-1));
  for (size_t i = 0; i < n; ++i) {
    if (events[i].tag == nullptr) continue;
    NUMDIST_RETURN_NOT_OK(TryFlush(static_cast<Conn*>(events[i].tag)));
  }
  return Status::OK();
}

Status MultiSender::Send(std::string_view frame) {
  if (conns_.empty()) {
    return Status::FailedPrecondition("net: MultiSender already finished");
  }
  Conn* conn = conns_[next_].get();
  next_ = (next_ + 1) % conns_.size();
  ByteWriter(&conn->buf).PutU32(static_cast<uint32_t>(frame.size()));
  conn->buf.append(frame);
  total_buffered_ += 4 + frame.size();
  NUMDIST_RETURN_NOT_OK(TryFlush(conn));
  while (total_buffered_ > max_buffered_) {
    NUMDIST_RETURN_NOT_OK(PumpOnce());
  }
  return Status::OK();
}

Status MultiSender::Finish() {
  while (total_buffered_ > 0) {
    // Re-arm any connection still holding bytes (TryFlush may have left
    // its interest set behind after a direct flush made progress).
    for (auto& conn : conns_) {
      NUMDIST_RETURN_NOT_OK(TryFlush(conn.get()));
    }
    if (total_buffered_ > 0) NUMDIST_RETURN_NOT_OK(PumpOnce());
  }
  for (auto& conn : conns_) {
    (void)reactor_.Del(conn->fd.get());
    conn->fd.reset();
  }
  conns_.clear();
  return Status::OK();
}

}  // namespace numdist::net
