// The event-loop collector: one process, one epoll Reactor, thousands of
// concurrent report_client connections multiplexed into one aggregate.
//
// Ingestion pipeline, per reactor round:
//
//   epoll_wait ─▶ accept / read ready sockets (bounded bytes per round)
//              ─▶ FrameDecoder reassembles u32-prefixed frames incrementally
//              ─▶ completed frames queue as one batch
//              ─▶ Executor::Shared().ParallelFor absorbs the batch into
//                 per-slot CollectorSessions (no locks, no contention)
//
// Determinism: which connection a frame arrived on, how reads interleave,
// how batches are cut, and which executor slot absorbs a frame are all
// invisible in the result — every frame is absorbed exactly once into SOME
// exact-integer accumulator, and accumulator merges are exact and
// commutative, so the final sketch is byte-identical to a single-process
// sharded run over the same frames for ANY interleaving
// (tests/net_test.cc in-process, tests/net_process_test.cc across real
// TCP connections and processes).
//
// Backpressure is level-triggered pause/resume: a connection whose decoded
// frames sit unabsorbed past `pause_bytes` has its read interest dropped
// (epoll Mod to 0) and picks it back up once the batch drains — the kernel
// socket buffer then throttles the sender via TCP flow control.
//
// Drain/shutdown: RequestDrain (async-signal-safe — SIGTERM handlers call
// it directly) closes the listeners, lets every open connection finish its
// stream to EOF, flushes the in-flight frames, and returns from Run with
// the aggregate complete. `expect_frames` is the scripted alternative:
// after N absorbed frames the server cuts remaining connections and
// drains itself (how coordinator trees without signal plumbing stop).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "eval/incremental.h"
#include "net/reactor.h"
#include "net/socket.h"
#include "serve/collector.h"
#include "serve/framing.h"
#include "wire/wire.h"

namespace numdist::net {

/// One periodic live estimate, handed to ServerOptions::estimate_sink
/// synchronously from the reactor loop. All references point at server
/// state and are valid only for the duration of the call.
struct EstimateTick {
  /// 1-based tick index.
  uint64_t tick = 0;
  /// Cumulative reports / absorbed frames at this tick.
  uint64_t reports = 0;
  uint64_t frames = 0;
  /// This tick's reconstruction (warm-started; see eval/incremental.h).
  const EmResult& em;
  /// Cumulative iteration-budget bookkeeping across all ticks.
  const EmCheckpoint& checkpoint;
  /// Cumulative per-bucket report histogram the estimate was computed
  /// from (exact integers; what a snapshot frame of the live state holds).
  const std::vector<uint64_t>& totals;
};

struct ServerOptions {
  /// Per-frame size ceiling (serve/framing.h).
  size_t max_frame_bytes = serve::kMaxFrameBytes;
  /// Pause reading a connection once its decoded-but-unabsorbed frame
  /// bytes exceed this; resume when they drop to half. Bounds per-session
  /// memory no matter how fast a client floods.
  size_t pause_bytes = 4u << 20;
  /// Most bytes read from one connection in one reactor round (fairness:
  /// one fast client cannot starve 10k slow ones).
  size_t read_chunk = 256u << 10;
  /// Executor parallelism cap for batch absorption (0 = all slots).
  size_t max_parallelism = 0;
  /// When > 0: initiate drain automatically after this many frames have
  /// been absorbed (remaining connections are cut, not drained — the
  /// scripted coordinator-tree stop condition).
  uint64_t expect_frames = 0;
  /// Record per-frame ingest latency (frame fully decoded -> absorbed)
  /// into ServerStats::latency_ns. Bench-only; off in production serving.
  bool record_latency = false;

  /// Write-ahead log path (empty = no durability). Make replays the log
  /// into the main session before serving (crash recovery), every
  /// absorbed frame is appended in absorption order, and the log is
  /// compacted to a checkpoint of the final state at drain. A collector
  /// killed at any byte offset restarts byte-identical to an
  /// uninterrupted run over the logged frames (serve/wal.h). With
  /// wal.segment_bytes > 0 the path is a segment directory (WalLog).
  std::string wal_path;
  /// Checkpoint cadence / sync / segmentation policy for wal_path.
  serve::WalOptions wal;

  /// Hot-standby replication endpoint (empty = none). Make dials it once;
  /// every absorbed non-duplicate frame is then streamed there verbatim
  /// (u32-prefixed, sequence context intact — the standby rebuilds the
  /// same dedup window) AFTER the local WAL append and BEFORE the
  /// client's ack, so an acked frame is always on the standby when the
  /// primary dies. State recovered from the WAL is synced ahead of the
  /// first frame as untagged/tenant-tagged sketch frames. A replication
  /// write failure is fatal to Run — acks promise the standby has the
  /// frame, so serving must not continue without it.
  std::string replicate_to;

  /// When false, sequenced frames are absorbed and deduplicated but never
  /// acked. Standby mode: a standby must not write into the replication
  /// stream — a primary that dies with unread data in its receive queue
  /// RSTs the connection and may discard its own unsent tail, exactly the
  /// bytes the standby exists to preserve.
  bool send_acks = true;

  /// Promote-on-disconnect: once at least one connection has been
  /// accepted, the server drains itself when the last open connection
  /// closes (clean EOF or error alike). Standby mode: the primary's death
  /// ends the replication stream, and the standby finishes with exactly
  /// the frames that reached it.
  bool drain_on_disconnect = false;

  /// Live estimation cadence: re-reconstruct after this many newly
  /// absorbed frames (0 = off). SW methods only (the estimate is the
  /// paper's EM/EMS reconstruction); Make rejects other specs when a
  /// cadence is set. Estimation reads the accumulators without mutating
  /// them, so the final sketch stays byte-identical to a run without it.
  uint64_t estimate_every_frames = 0;
  /// ...and/or re-reconstruct every this many milliseconds (0 = off).
  /// Either cadence due triggers a tick.
  int64_t estimate_every_ms = 0;
  /// Mini-batch forgetting half-life in reports; > 0 switches the live
  /// estimate from warm (full cumulative counts) to the exponentially
  /// forgotten window (IncrementalOptions::Mode::kMiniBatch).
  double estimate_half_life = 0.0;
  /// Per-tick EM iteration budget (0 = the estimator's own cap).
  size_t estimate_max_iterations = 0;
  /// Called after each successful tick (e.g. to emit a snapshot frame of
  /// the live counts plus the estimate). Failures in the sink are the
  /// sink's problem; the server keeps serving.
  std::function<void(const EstimateTick&)> estimate_sink;
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t frames_absorbed = 0;
  uint64_t bytes_received = 0;
  /// Times a connection was paused for backpressure.
  uint64_t pauses = 0;
  /// Connections dropped on a typed frame/decode error (the error is in
  /// `first_error`; the server keeps serving everyone else).
  uint64_t connection_errors = 0;
  /// Sequenced frames skipped as already-claimed duplicates (still acked).
  uint64_t duplicates = 0;
  /// Ack frames queued to clients (absorbed + duplicate sequenced frames).
  uint64_t acks_queued = 0;
  /// Frames streamed to the standby (ServerOptions::replicate_to).
  uint64_t frames_replicated = 0;
  /// Successful live-estimation ticks (see ServerOptions cadence knobs).
  uint64_t estimate_ticks = 0;
  Status first_error;
  /// Per-frame decoded->absorbed latency, when record_latency is set.
  std::vector<uint64_t> latency_ns;
};

/// \brief Epoll-driven multi-connection collector process core.
class CollectorServer {
 public:
  static Result<std::unique_ptr<CollectorServer>> Make(
      const wire::MethodSpec& spec, ServerOptions options = {});
  ~CollectorServer();  // out-of-line: members hold incomplete types here

  /// Opens a listener and returns the endpoint it actually bound
  /// (tcp port 0 resolved). Call any number of times before Run — a
  /// collector can serve TCP and a Unix socket simultaneously.
  Result<Endpoint> AddListener(const Endpoint& endpoint);

  /// Serves until drain completes: accepts, reads, reassembles, absorbs.
  /// Per-connection errors (hostile frames, mid-stream disconnects) drop
  /// that connection and are counted in stats(); they do not stop the
  /// server. Returns non-OK only for reactor/socket-level failures.
  Status Run();

  /// Starts a graceful drain: stop accepting, serve open connections to
  /// EOF, absorb everything, return from Run. Async-signal-safe and
  /// thread-safe (atomic flag + eventfd wake).
  void RequestDrain();

  const wire::MethodSpec& spec() const { return main_.spec(); }
  const ServerStats& stats() const { return stats_; }
  /// Reports aggregated so far. Complete only after Run returns.
  uint64_t num_reports() const;

  /// What WAL recovery replayed before serving began (zeroes when
  /// ServerOptions::wal_path was empty or named a fresh log).
  const serve::WalReplayStats& wal_recovery() const { return wal_recovery_; }

  /// Caps one tenant's global spend across every sub-session (the ledger
  /// is shared, so parallel absorption enforces one process-wide budget).
  void SetTenantBudget(uint32_t tenant, serve::TenantBudget budget);

  /// The shared estimator behind live estimation (null unless a cadence
  /// was configured). Sinks use it to build snapshot frames
  /// (StreamingAggregator::ForEstimator) matching the live counts.
  const std::shared_ptr<const SwEstimator>& live_estimator() const {
    return live_estimator_;
  }
  /// The incremental reconstruction state (null unless configured).
  const IncrementalReconstructor* incremental() const { return inc_.get(); }

  /// The aggregate as a wire sketch frame / the reconstructed estimate.
  /// Valid after Run has returned (sub-session state is merged at drain).
  Result<std::string> EncodeSketch() const;
  Result<MethodOutput> Reconstruct() const;

 private:
  struct Listener;
  struct Connection;
  struct PendingFrame;

  CollectorServer(serve::CollectorSession main, Reactor reactor,
                  ServerOptions options);

  void EnterDrain(bool cut_connections);
  Status HandleAccept(Listener* listener);
  void HandleReadable(Connection* conn);
  void AbsorbPending();
  /// Queues one ack frame on the source connection (sent after the frame
  /// is locally durable and replicated).
  void QueueAck(Connection* conn, const wire::FrameSeq& seq);
  /// Pushes a connection's queued output (acks) to the socket; arms
  /// EPOLLOUT when the kernel buffer is full.
  void FlushConn(Connection* conn);
  /// Re-registers a connection's epoll interest from its paused/want_write
  /// state.
  void UpdateInterest(Connection* conn);
  /// Streams one absorbed frame to the standby (u32-prefixed, blocking),
  /// discarding any acks the standby has sent back first.
  Status ForwardToReplica(std::string_view frame);
  /// Compacts the WAL to a checkpoint of the merged live state once the
  /// append cadence is due (no-op without a WAL or cadence).
  Status MaybeCheckpointWal();
  void FailConnection(Connection* conn, const Status& error);
  void CloseConnection(Connection* conn);
  void ReapClosed();
  Status MergeSubSessions();
  /// Runs a live-estimation tick when one is due (frame or time cadence).
  void MaybeEstimate();
  /// Milliseconds until the next timed tick (-1 = wait forever).
  int WaitTimeoutMs() const;

  serve::CollectorSession main_;
  Reactor reactor_;
  ServerOptions options_;
  ServerStats stats_;

  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<PendingFrame> pending_;
  size_t pending_bytes_ = 0;
  /// Per-executor-slot sub-aggregates, merged into main_ at drain.
  std::vector<serve::CollectorSession> sub_sessions_;
  bool merged_ = false;

  /// Durability (null unless ServerOptions::wal_path was set). The server
  /// owns the log — appends happen from the batch loop in absorption
  /// order, NOT through main_, whose HandleFrame path must stay silent
  /// during the drain-time sub-session merge.
  std::unique_ptr<serve::WalLog> wal_;
  serve::WalReplayStats wal_recovery_;
  uint64_t wal_frames_since_checkpoint_ = 0;
  /// First WAL append failure; fatal (Run returns it — an aggregate the
  /// log no longer covers must not keep growing silently).
  Status wal_status_ = Status::OK();

  /// Standby replication (invalid fd unless ServerOptions::replicate_to
  /// was set). Blocking socket written from the batch loop; a write
  /// failure lands in replica_status_ and is fatal like a WAL failure.
  Fd replica_fd_;
  Status replica_status_ = Status::OK();

  /// Live estimation (null unless a cadence is configured). The
  /// reconstructor only ever READS accumulator state (ExportState sums),
  /// so the final drained sketch is byte-identical with or without it.
  std::shared_ptr<const SwEstimator> live_estimator_;
  std::unique_ptr<IncrementalReconstructor> inc_;
  uint64_t last_estimate_frames_ = 0;
  std::chrono::steady_clock::time_point next_estimate_at_{};
  std::vector<uint64_t> estimate_totals_;  // per-tick gather scratch

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
};

}  // namespace numdist::net
