#include "net/fault.h"

#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/rng.h"

namespace numdist::net {

namespace {

constexpr std::string_view kInjectedPrefix = "fault: injected ";

void SleepMs(uint64_t ms) {
  if (ms == 0) return;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000L);
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace

FaultPlan FaultPlan::Resets(uint64_t seed, uint32_t count, uint64_t max_byte) {
  FaultPlan plan;
  Rng rng(seed);
  const uint64_t span = std::max<uint64_t>(max_byte, 2);
  for (uint32_t attempt = 0; attempt < count; ++attempt) {
    plan.Add(attempt, FaultEvent{.kind = FaultKind::kReset,
                                 .at_byte = 1 + rng.UniformInt(span - 1),
                                 .param = 0});
  }
  return plan;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, uint32_t faulty_attempts,
                              uint64_t max_byte) {
  FaultPlan plan;
  Rng rng(seed);
  const uint64_t span = std::max<uint64_t>(max_byte, 2);
  for (uint32_t attempt = 0; attempt < faulty_attempts; ++attempt) {
    // Draw order is fixed (kind, then offset) so the plan is a stable
    // function of the seed even if the kind distribution changes weight.
    const uint64_t kind_draw = rng.UniformInt(4);
    const uint64_t at_byte = 1 + rng.UniformInt(span - 1);
    FaultEvent event;
    event.at_byte = at_byte;
    switch (kind_draw) {
      case 0:
        event.kind = FaultKind::kDelay;
        event.param = 1 + rng.UniformInt(5);  // 1..5 ms
        break;
      case 1:
        event.kind = FaultKind::kShortWrite;
        event.param = 1;
        break;
      case 2:
        event.kind = FaultKind::kTruncate;
        break;
      default:
        event.kind = FaultKind::kReset;
        break;
    }
    plan.Add(attempt, event);
  }
  return plan;
}

void FaultPlan::Add(uint32_t attempt, FaultEvent event) {
  events_[attempt].push_back(event);
}

std::vector<FaultEvent> FaultPlan::Events(uint32_t attempt) const {
  const auto it = events_.find(attempt);
  if (it == events_.end()) return {};
  std::vector<FaultEvent> sorted = it->second;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_byte < b.at_byte;
                   });
  return sorted;
}

bool IsInjectedFault(const Status& status) {
  return status.message().rfind(kInjectedPrefix, 0) == 0;
}

FaultyWriter::FaultyWriter(Fd* fd, const FaultPlan* plan, uint32_t attempt)
    : fd_(fd) {
  if (plan != nullptr) events_ = plan->Events(attempt);
}

Status FaultyWriter::WriteClean(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t wrote = send(fd_->get(), bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("net: send failed (") +
                              std::strerror(errno) + ")");
    }
    off += static_cast<size_t>(wrote);
  }
  offset_ += bytes.size();
  return Status::OK();
}

Status FaultyWriter::Write(std::string_view bytes) {
  while (!bytes.empty()) {
    if (drop_remaining_ > 0) {
      // A drop region can span Write calls: keep discarding until the
      // scripted byte count is gone.
      const size_t dropped =
          std::min<size_t>(bytes.size(), static_cast<size_t>(drop_remaining_));
      bytes = bytes.substr(dropped);
      offset_ += dropped;  // plan offsets address the logical stream
      drop_remaining_ -= dropped;
      continue;
    }
    if (next_event_ >= events_.size()) return WriteClean(bytes);
    const FaultEvent& event = events_[next_event_];
    if (event.at_byte >= offset_ + bytes.size()) return WriteClean(bytes);
    // Send the clean span up to the fault's offset, then fire it.
    const size_t clean = static_cast<size_t>(
        event.at_byte > offset_ ? event.at_byte - offset_ : 0);
    if (clean > 0) {
      NUMDIST_RETURN_NOT_OK(WriteClean(bytes.substr(0, clean)));
      bytes = bytes.substr(clean);
    }
    ++next_event_;
    ++injected_;
    switch (event.kind) {
      case FaultKind::kDelay:
        SleepMs(event.param);
        break;
      case FaultKind::kShortWrite:
        // The syscall boundary at at_byte already happened (the clean span
        // above ended exactly there); the delay gives the receiver a
        // chance to read the partial frame before the rest arrives.
        SleepMs(event.param);
        break;
      case FaultKind::kDrop:
        drop_remaining_ = event.param;
        break;
      case FaultKind::kTruncate:
        (void)shutdown(fd_->get(), SHUT_WR);
        return Status::Internal(
            std::string(kInjectedPrefix) + "truncation at byte " +
            std::to_string(offset_));
      case FaultKind::kReset:
        HardResetAndClose(fd_);
        return Status::Internal(std::string(kInjectedPrefix) +
                                "connection reset at byte " +
                                std::to_string(offset_));
    }
  }
  return Status::OK();
}

void HardResetAndClose(Fd* fd) {
  if (!fd->valid()) return;
  struct linger hard = {.l_onoff = 1, .l_linger = 0};
  (void)setsockopt(fd->get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  fd->reset();
}

void ReorderFrames(std::span<std::string> frames, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = frames.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.UniformInt(i));
    std::swap(frames[i - 1], frames[j]);
  }
}

}  // namespace numdist::net
