#include "mean/moments.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mean/pm.h"
#include "mean/sr.h"

namespace numdist {

namespace {

// Perturbs every value (already mapped into [-1, 1]) and returns the report
// average, i.e. the unbiased estimate of the mapped mean.
Result<double> MeanOfPerturbed(const std::vector<double>& mapped,
                               MeanMechanism mechanism, double epsilon,
                               Rng& rng) {
  double acc = 0.0;
  if (mechanism == MeanMechanism::kStochasticRounding) {
    Result<StochasticRounding> sr = StochasticRounding::Make(epsilon);
    if (!sr.ok()) return sr.status();
    for (double v : mapped) acc += sr->Perturb(v, rng);
  } else {
    Result<PiecewiseMechanism> pm = PiecewiseMechanism::Make(epsilon);
    if (!pm.ok()) return pm.status();
    for (double v : mapped) acc += pm->Perturb(v, rng);
  }
  return acc / static_cast<double>(mapped.size());
}

}  // namespace

Result<double> EstimateMean(const std::vector<double>& values,
                            MeanMechanism mechanism, double epsilon,
                            Rng& rng) {
  if (values.empty()) {
    return Status::InvalidArgument("EstimateMean: no input values");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "EstimateMean: input values must be finite");
    }
  }
  std::vector<double> mapped;
  mapped.reserve(values.size());
  for (double v : values) {
    assert(v >= 0.0 && v <= 1.0);
    mapped.push_back(2.0 * v - 1.0);
  }
  Result<double> m = MeanOfPerturbed(mapped, mechanism, epsilon, rng);
  if (!m.ok()) return m.status();
  return (m.value() + 1.0) / 2.0;  // unmap [-1,1] -> [0,1]
}

Result<MomentsEstimate> EstimateMoments(const std::vector<double>& values,
                                        MeanMechanism mechanism,
                                        double epsilon, Rng& rng) {
  if (values.size() < 2) {
    return Status::InvalidArgument("EstimateMoments: need >= 2 users");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "EstimateMoments: input values must be finite");
    }
  }
  // Random 50/50 split (sampling without replacement via index shuffle).
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i-- > 1;) {
    std::swap(order[i], order[rng.UniformInt(i + 1)]);
  }
  const size_t half = values.size() / 2;

  // Phase 1: mean from the first half.
  std::vector<double> phase1;
  phase1.reserve(half);
  for (size_t i = 0; i < half; ++i) phase1.push_back(values[order[i]]);
  Result<double> mean = EstimateMean(phase1, mechanism, epsilon, rng);
  if (!mean.ok()) return mean.status();
  const double mu = std::clamp(mean.value(), 0.0, 1.0);

  // Phase 2: squared deviations from the broadcast mean, second half.
  // (v - mu)^2 is in [0, 1]; map to [-1, 1] for the mechanism.
  std::vector<double> mapped;
  mapped.reserve(values.size() - half);
  for (size_t i = half; i < values.size(); ++i) {
    const double dev = values[order[i]] - mu;
    mapped.push_back(2.0 * dev * dev - 1.0);
  }
  Result<double> dev_mean = MeanOfPerturbed(mapped, mechanism, epsilon, rng);
  if (!dev_mean.ok()) return dev_mean.status();

  MomentsEstimate out;
  out.mean = mu;
  out.variance = std::max(0.0, (dev_mean.value() + 1.0) / 2.0);
  return out;
}

}  // namespace numdist
