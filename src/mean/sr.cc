#include "mean/sr.h"

#include <cassert>
#include <cmath>

namespace numdist {

Result<StochasticRounding> StochasticRounding::Make(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("SR: epsilon must be positive and finite");
  }
  return StochasticRounding(epsilon);
}

StochasticRounding::StochasticRounding(double epsilon) : epsilon_(epsilon) {
  const double e = std::exp(epsilon);
  p_ = e / (e + 1.0);
  magnitude_ = 1.0 / (2.0 * p_ - 1.0);  // == (e+1)/(e-1)
}

double StochasticRounding::Perturb(double v, Rng& rng) const {
  assert(v >= -1.0 && v <= 1.0);
  // Pr[+1] = q + (p - q)(1 + v)/2, linear in v; E[v'] = (p - q) v.
  const double q = 1.0 - p_;
  const double prob_plus = q + (p_ - q) * (1.0 + v) / 2.0;
  const double vprime = rng.Bernoulli(prob_plus) ? 1.0 : -1.0;
  return vprime * magnitude_;
}

double StochasticRounding::MeanOfReports(const std::vector<double>& reports) {
  if (reports.empty()) return 0.0;
  double acc = 0.0;
  for (double r : reports) acc += r;
  return acc / static_cast<double>(reports.size());
}

double StochasticRounding::WorstCaseVariance() const {
  return magnitude_ * magnitude_;
}

}  // namespace numdist
