// Piecewise Mechanism (PM), Wang et al. [30] (paper §2.2): reports a value
// in [-s, s], s = (e^(eps/2) + 1)/(e^(eps/2) - 1), with a high-probability
// window [l(v), r(v)] around (a scaled image of) the input. Unbiased; lower
// variance than SR for large eps.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// \brief PM mean-estimation mechanism on the input domain [-1, 1].
class PiecewiseMechanism {
 public:
  /// Creates the mechanism. Requires epsilon > 0.
  static Result<PiecewiseMechanism> Make(double epsilon);

  /// Randomizes one value v in [-1, 1]; E[report] = v, |report| <= s().
  double Perturb(double v, Rng& rng) const;

  /// Left edge of the high-probability window for input v.
  double WindowLeft(double v) const;
  /// Right edge of the high-probability window for input v.
  double WindowRight(double v) const;

  /// Mean of reports (the unbiased mean estimate).
  static double MeanOfReports(const std::vector<double>& reports);

  double epsilon() const { return epsilon_; }
  /// Output-domain bound s = (e^(eps/2) + 1)/(e^(eps/2) - 1).
  double s() const { return s_; }
  /// In-window density.
  double high_density() const { return high_density_; }
  /// Out-of-window density.
  double low_density() const { return low_density_; }

 private:
  explicit PiecewiseMechanism(double epsilon);

  double epsilon_;
  double s_;
  double high_density_;
  double low_density_;
  double in_window_mass_;  // e^(eps/2) / (e^(eps/2) + 1)
};

}  // namespace numdist
