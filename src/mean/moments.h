// Mean and variance estimation protocols built on SR/PM (paper §6.3).
//
// Mean: every user perturbs their value (mapped to [-1, 1]) with the chosen
// mechanism; the de-biased report average is the estimate.
//
// Variance: two-phase protocol — a random half of the users estimate the
// mean; the estimate is broadcast; the other half report their squared
// deviation (v - mu~)^2 (mapped to [-1, 1]); the average is the variance
// estimate. The (mu - mu~)^2 bias term is quadratically small and, as in
// the paper, not corrected.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// Which scalar mechanism the protocol uses.
enum class MeanMechanism {
  kStochasticRounding,
  kPiecewiseMechanism,
};

/// Mean/variance estimates over the canonical [0, 1] domain.
struct MomentsEstimate {
  double mean = 0.0;
  double variance = 0.0;
};

/// Mean-only protocol: all users spend the full budget on the mean.
/// `values` are in [0, 1]. Requires epsilon > 0 and non-empty input.
Result<double> EstimateMean(const std::vector<double>& values,
                            MeanMechanism mechanism, double epsilon, Rng& rng);

/// Two-phase mean + variance protocol (half the population each).
Result<MomentsEstimate> EstimateMoments(const std::vector<double>& values,
                                        MeanMechanism mechanism,
                                        double epsilon, Rng& rng);

}  // namespace numdist
