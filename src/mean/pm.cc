#include "mean/pm.h"

#include <cassert>
#include <cmath>

namespace numdist {

Result<PiecewiseMechanism> PiecewiseMechanism::Make(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("PM: epsilon must be positive and finite");
  }
  return PiecewiseMechanism(epsilon);
}

PiecewiseMechanism::PiecewiseMechanism(double epsilon) : epsilon_(epsilon) {
  const double e2 = std::exp(epsilon / 2.0);
  s_ = (e2 + 1.0) / (e2 - 1.0);
  high_density_ = (e2 / 2.0) * (e2 - 1.0) / (e2 + 1.0);
  low_density_ = (1.0 / (2.0 * e2)) * (e2 - 1.0) / (e2 + 1.0);
  in_window_mass_ = e2 / (e2 + 1.0);
}

double PiecewiseMechanism::WindowLeft(double v) const {
  const double e2 = std::exp(epsilon_ / 2.0);
  return (e2 * v - 1.0) / (e2 - 1.0);
}

double PiecewiseMechanism::WindowRight(double v) const {
  const double e2 = std::exp(epsilon_ / 2.0);
  return (e2 * v + 1.0) / (e2 - 1.0);
}

double PiecewiseMechanism::Perturb(double v, Rng& rng) const {
  assert(v >= -1.0 && v <= 1.0);
  const double l = WindowLeft(v);
  const double r = WindowRight(v);
  if (rng.Bernoulli(in_window_mass_)) {
    return rng.Uniform(l, r);
  }
  // Uniform over [-s, l] u [r, s], proportionally to segment lengths.
  const double left_len = l - (-s_);
  const double right_len = s_ - r;
  const double u = rng.Uniform() * (left_len + right_len);
  return (u < left_len) ? (-s_ + u) : (r + (u - left_len));
}

double PiecewiseMechanism::MeanOfReports(const std::vector<double>& reports) {
  if (reports.empty()) return 0.0;
  double acc = 0.0;
  for (double r : reports) acc += r;
  return acc / static_cast<double>(reports.size());
}

}  // namespace numdist
