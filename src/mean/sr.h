// Stochastic Rounding (SR), Duchi et al. [9] (paper §2.2): every user
// reports one of the two extremes {-1, +1} with probabilities linear in the
// input, then de-biases by 1/(p - q). The report mean is an unbiased
// estimate of the population mean.
#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// \brief SR mean-estimation mechanism on the input domain [-1, 1].
class StochasticRounding {
 public:
  /// Creates the mechanism. Requires epsilon > 0.
  static Result<StochasticRounding> Make(double epsilon);

  /// Randomizes one value v in [-1, 1]; the returned de-biased report is
  /// +-1/(p - q) and satisfies E[report] = v.
  double Perturb(double v, Rng& rng) const;

  /// Mean of de-biased reports (the unbiased mean estimate).
  static double MeanOfReports(const std::vector<double>& reports);

  /// Per-report variance upper bound 1/(p-q)^2 - v^2 <= ((e^eps+1)/(e^eps-1))^2.
  double WorstCaseVariance() const;

  double epsilon() const { return epsilon_; }
  /// The de-biased report magnitude 1/(p - q) = (e^eps + 1)/(e^eps - 1).
  double report_magnitude() const { return magnitude_; }

 private:
  explicit StochasticRounding(double epsilon);

  double epsilon_;
  double p_;          // e^eps / (e^eps + 1)
  double magnitude_;  // 1 / (2p - 1)
};

}  // namespace numdist
