// Method registry for the paper's evaluation (Table 2): every competitor is
// wrapped behind one interface so the experiment runner and the per-figure
// benches can sweep them uniformly.
//
//   SW-EMS / SW-EM      (this paper, §5)        -> distribution + all metrics
//   HH-ADMM             (this paper, §4.3)      -> distribution + all metrics
//   CFO binning c=16/32/64 (§4.1)               -> distribution + all metrics
//   HH, HaarHRR         ([18], §4.2)            -> range queries only
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// What one protocol run produces.
struct MethodOutput {
  /// Reconstructed d-bucket distribution over [0,1]. Empty when the method
  /// cannot produce a valid distribution (HH, HaarHRR — their estimates
  /// contain negatives and are evaluated on range queries only, per Table 2).
  std::vector<double> distribution;
  /// Answers R(lo, alpha) = mass of [lo, lo+alpha]. Always callable; for
  /// hierarchy methods this queries the tree directly.
  std::function<double(double lo, double alpha)> range_query;
};

/// \brief A distribution-estimation protocol under evaluation.
class DistributionMethod {
 public:
  virtual ~DistributionMethod() = default;
  /// Display name, e.g. "SW-EMS", "CFO-bin-32".
  virtual const std::string& name() const = 0;
  /// True iff Run() fills MethodOutput::distribution.
  virtual bool yields_distribution() const = 0;
  /// Executes the full protocol (client perturbation + server estimation)
  /// on raw values in [0,1], reconstructing at granularity d.
  virtual Result<MethodOutput> Run(const std::vector<double>& values,
                                   double epsilon, size_t d,
                                   Rng& rng) const = 0;
};

/// SW reporting + EMS reconstruction (the paper's headline method).
std::unique_ptr<DistributionMethod> MakeSwEmsMethod();
/// SW reporting + plain EM reconstruction.
std::unique_ptr<DistributionMethod> MakeSwEmMethod();
/// CFO (adaptive GRR/OLH) on `bins` chunks + Norm-Sub + uniform expansion.
/// Requires bins to divide the reconstruction granularity d.
std::unique_ptr<DistributionMethod> MakeCfoBinningMethod(size_t bins);
/// Hierarchical histogram with constrained inference (range queries only).
std::unique_ptr<DistributionMethod> MakeHhMethod(size_t beta = 4);
/// Haar wavelet + HRR (range queries only).
std::unique_ptr<DistributionMethod> MakeHaarHrrMethod();
/// Hierarchical histogram post-processed with ADMM (this paper).
std::unique_ptr<DistributionMethod> MakeHhAdmmMethod(size_t beta = 4);

/// The full suite evaluated in the paper's figures, in display order:
/// SW-EMS, SW-EM, HH-ADMM, CFO-bin-16/32/64, HH, HaarHRR.
std::vector<std::unique_ptr<DistributionMethod>> MakeStandardSuite();

}  // namespace numdist
