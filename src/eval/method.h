// Method registry for the paper's evaluation (Table 2): every competitor is
// a thin adapter over one batched Protocol (see protocol/protocol.h), so
// the experiment runner and the per-figure benches can sweep them uniformly
// and shard their report streams across threads.
//
//   SW-EMS / SW-EM      (this paper, §5)        -> distribution + all metrics
//   HH-ADMM             (this paper, §4.3)      -> distribution + all metrics
//   CFO binning c=16/32/64 (§4.1)               -> distribution + all metrics
//   HH, HaarHRR         ([18], §4.2)            -> range queries only
//
// A DistributionMethod carries only a name, the Table-2 capability flag,
// and a factory instantiating the underlying Protocol at a concrete
// (epsilon, d). All client/server mechanics — batched encode+perturb,
// mergeable accumulation, reconstruction — live behind the Protocol
// contract; Run() is a convenience wrapper executing the whole pipeline as
// a single report chunk with the caller's RNG (deterministic given the
// seed). The runner instead uses MakeProtocol() directly and drives the
// sharded path (protocol/sharded.h) with per-shard RNG streams.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "protocol/protocol.h"

namespace numdist {

/// \brief A distribution-estimation protocol under evaluation.
class DistributionMethod {
 public:
  virtual ~DistributionMethod() = default;
  /// Display name, e.g. "SW-EMS", "CFO-bin-32".
  virtual const std::string& name() const = 0;
  /// Key identifying the protocol configuration for the runner's cross-call
  /// protocol cache: two methods with equal cache_key() must build
  /// interchangeable protocols at every (epsilon, d). Defaults to name();
  /// override when the display name does not pin every constructor
  /// parameter (the built-in HH factories encode beta here, for example).
  virtual const std::string& cache_key() const { return name(); }
  /// True iff the method fills MethodOutput::distribution.
  virtual bool yields_distribution() const = 0;
  /// Instantiates the underlying batched Protocol at privacy budget
  /// `epsilon` and reconstruction granularity `d`.
  virtual Result<ProtocolPtr> MakeProtocol(double epsilon, size_t d) const = 0;
  /// Executes the full protocol (client perturbation + server estimation)
  /// on raw values in [0,1] as one report chunk. Convenience wrapper over
  /// MakeProtocol + RunProtocol for tests, tools and examples.
  virtual Result<MethodOutput> Run(const std::vector<double>& values,
                                   double epsilon, size_t d, Rng& rng) const;
};

/// SW reporting + EMS reconstruction (the paper's headline method).
std::unique_ptr<DistributionMethod> MakeSwEmsMethod();
/// SW reporting + plain EM reconstruction.
std::unique_ptr<DistributionMethod> MakeSwEmMethod();
/// CFO (adaptive GRR/OLH) on `bins` chunks + Norm-Sub + uniform expansion.
/// Requires bins to divide the reconstruction granularity d.
std::unique_ptr<DistributionMethod> MakeCfoBinningMethod(size_t bins);
/// Hierarchical histogram with constrained inference (range queries only).
std::unique_ptr<DistributionMethod> MakeHhMethod(size_t beta = 4);
/// Haar wavelet + HRR (range queries only).
std::unique_ptr<DistributionMethod> MakeHaarHrrMethod();
/// Hierarchical histogram post-processed with ADMM (this paper).
std::unique_ptr<DistributionMethod> MakeHhAdmmMethod(size_t beta = 4);

/// The full suite evaluated in the paper's figures, in display order:
/// SW-EMS, SW-EM, HH-ADMM, CFO-bin-16/32/64, HH, HaarHRR.
std::vector<std::unique_ptr<DistributionMethod>> MakeStandardSuite();

}  // namespace numdist
