// Incremental reconstruction over rolling snapshots.
//
// The batch pipeline freezes a snapshot, then runs EM to convergence from a
// uniform start — every reconstruction pays the full cold cost even when
// the snapshot advanced by a handful of reports. IncrementalReconstructor
// makes reconstruction continuous:
//
//  * Warm mode: EM restarts from the previous fixed point (EmCheckpoint).
//    When a snapshot grows by Δ reports the likelihood surface barely
//    moves, so the warm run converges in a small fraction of the cold
//    iterations while reaching the same fixed point (up to the shared
//    tolerance — see stats::EmAgreementRadius).
//  * Mini-batch mode: the same warm-started runs, but over an
//    exponentially forgotten count window. Each update multiplies the
//    running weighted histogram by lambda = 2^(-Δn / half_life) before
//    adding the new reports, so reports older than a few half-lives stop
//    influencing the estimate and the reconstruction tracks distribution
//    drift instead of averaging over it.
//
// Both modes consume cumulative per-bucket totals (what a live collector
// or a StreamingAggregator actually exposes) and diff them internally, so
// callers never materialize per-tick deltas. Everything is deterministic —
// no RNG, single-threaded — and the inputs (exact integer counts) are
// thread-count-invariant, so incremental estimates inherit the system's
// bit-identical-for-any-thread-count contract.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/sw_estimator.h"
#include "eval/streaming.h"

namespace numdist {

/// Controls for IncrementalReconstructor.
struct IncrementalOptions {
  /// kWarm: full cumulative counts, warm-started EM. kMiniBatch: the
  /// decayed window (requires half_life > 0).
  enum class Mode { kWarm, kMiniBatch } mode = Mode::kWarm;
  /// Forgetting half-life in reports: after half_life further reports, a
  /// report's weight has halved. Only read in kMiniBatch mode.
  double half_life = 0.0;
  /// Per-update EM iteration budget; 0 keeps the estimator's own cap. A
  /// small budget (e.g. 50) amortizes convergence across ticks: each
  /// update refines the running fixed point instead of blocking the
  /// ingest loop until full convergence.
  size_t max_iterations_per_update = 0;
};

/// \brief Rolling-snapshot EM driver: feed cumulative totals, get
/// continuously refined estimates.
class IncrementalReconstructor {
 public:
  /// Validates options against the estimator (shared, immutable).
  static Result<IncrementalReconstructor> Make(
      std::shared_ptr<const SwEstimator> estimator,
      const IncrementalOptions& options);

  /// Advances the rolling window to the cumulative per-bucket `totals`
  /// (size = output buckets, monotone non-decreasing across calls, summing
  /// to `n`) and re-reconstructs. Errors on shrinking or mismatched
  /// totals; n == 0 (nothing ingested yet) is an error like Snapshot().
  Result<EmResult> UpdateFromTotals(const std::vector<uint64_t>& totals,
                                    uint64_t n);

  /// Convenience: UpdateFromTotals on a live aggregator's counts.
  Result<EmResult> Update(const StreamingAggregator& aggregator) {
    return UpdateFromTotals(aggregator.counts(), aggregator.count());
  }

  /// Resumable EM state: latest fixed point + cumulative iteration budget
  /// spent across all updates.
  const EmCheckpoint& checkpoint() const { return checkpoint_; }

  /// Mini-batch mode's decayed weighted histogram (empty in warm mode).
  const std::vector<double>& weighted_counts() const { return weighted_; }

  /// Cumulative reports at the latest update.
  uint64_t reports_seen() const { return reports_seen_; }

  /// Updates performed so far.
  uint64_t updates() const { return updates_; }

  const SwEstimator& estimator() const { return *estimator_; }
  const IncrementalOptions& options() const { return options_; }

 private:
  IncrementalReconstructor(std::shared_ptr<const SwEstimator> estimator,
                           const IncrementalOptions& options);

  std::shared_ptr<const SwEstimator> estimator_;
  IncrementalOptions options_;
  EmOptions em_options_;  // estimator defaults + per-update budget
  EmCheckpoint checkpoint_;
  std::vector<uint64_t> prev_totals_;  // last seen cumulative histogram
  std::vector<double> weighted_;       // decayed window (mini-batch only)
  std::vector<double> scratch_;        // warm mode's exact double totals
  uint64_t reports_seen_ = 0;
  uint64_t updates_ = 0;
};

}  // namespace numdist
