#include "eval/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace numdist {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell;
      if (c + 1 < headers_.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ',';
      os << (c < row.size() ? row[c] : std::string());
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSci(double v) {
  if (std::isnan(v)) return "-";
  char buf[32];
  snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

std::string FormatG(double v, int digits) {
  if (std::isnan(v)) return "-";
  char buf[32];
  snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace numdist
