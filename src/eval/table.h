// Result-table rendering for the benches: aligned human-readable tables and
// machine-readable CSV on the same data.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace numdist {

/// \brief Collects rows of string cells and renders them aligned or as CSV.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; missing trailing cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  void Print(std::ostream& os) const;

  /// Renders the table as CSV (header row first).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double in compact scientific form ("1.234e-02"); NaN -> "-".
std::string FormatSci(double v);

/// Formats a double with `digits` significant digits; NaN -> "-".
std::string FormatG(double v, int digits = 4);

}  // namespace numdist
