#include "eval/incremental.h"

#include <cmath>
#include <utility>

namespace numdist {

IncrementalReconstructor::IncrementalReconstructor(
    std::shared_ptr<const SwEstimator> estimator,
    const IncrementalOptions& options)
    : estimator_(std::move(estimator)),
      options_(options),
      em_options_(estimator_->em_options()) {
  if (options_.max_iterations_per_update > 0) {
    em_options_.max_iterations = options_.max_iterations_per_update;
  }
}

Result<IncrementalReconstructor> IncrementalReconstructor::Make(
    std::shared_ptr<const SwEstimator> estimator,
    const IncrementalOptions& options) {
  if (estimator == nullptr) {
    return Status::InvalidArgument("IncrementalReconstructor: null estimator");
  }
  if (options.mode == IncrementalOptions::Mode::kMiniBatch &&
      !(options.half_life > 0.0 && std::isfinite(options.half_life))) {
    return Status::InvalidArgument(
        "IncrementalReconstructor: mini-batch mode needs a finite "
        "half_life > 0");
  }
  return IncrementalReconstructor(std::move(estimator), options);
}

Result<EmResult> IncrementalReconstructor::UpdateFromTotals(
    const std::vector<uint64_t>& totals, uint64_t n) {
  const size_t buckets = estimator_->output_buckets();
  if (totals.size() != buckets) {
    return Status::InvalidArgument(
        "IncrementalReconstructor: totals size does not match the "
        "estimator's output buckets");
  }
  if (n < reports_seen_) {
    return Status::InvalidArgument(
        "IncrementalReconstructor: cumulative report count went backwards");
  }
  if (!prev_totals_.empty()) {
    for (size_t j = 0; j < buckets; ++j) {
      if (totals[j] < prev_totals_[j]) {
        return Status::InvalidArgument(
            "IncrementalReconstructor: cumulative totals went backwards");
      }
    }
  }

  Result<EmResult> run = Status::Internal("unreachable");
  if (options_.mode == IncrementalOptions::Mode::kMiniBatch) {
    // Decay the window by the number of reports that arrived since the
    // last update, then absorb the new delta at full weight:
    //   w <- 2^(-Δn / half_life) * w + (totals - prev_totals).
    // The first update seeds the window with the whole history (λ^0 on an
    // empty window), matching a collector that starts estimating late.
    const uint64_t delta_n = n - reports_seen_;
    const double lambda =
        std::exp2(-static_cast<double>(delta_n) / options_.half_life);
    weighted_.resize(buckets, 0.0);
    for (size_t j = 0; j < buckets; ++j) {
      const uint64_t prev = prev_totals_.empty() ? 0 : prev_totals_[j];
      weighted_[j] =
          lambda * weighted_[j] + static_cast<double>(totals[j] - prev);
    }
    run = EstimateEmWeighted(estimator_->model(), weighted_, em_options_,
                             &checkpoint_);
  } else {
    // Warm mode reconstructs the full cumulative histogram; the exact
    // uint64 -> double conversion keeps it bit-identical to a cold
    // Reconstruct on the same counts apart from the warm initial iterate.
    scratch_.resize(buckets);
    for (size_t j = 0; j < buckets; ++j) {
      scratch_[j] = static_cast<double>(totals[j]);
    }
    run = EstimateEmWeighted(estimator_->model(), scratch_, em_options_,
                             &checkpoint_);
  }
  if (!run.ok()) return run;

  // Only commit the rolling state on success so a failed update (e.g. an
  // all-zero window) can be retried after more reports arrive.
  prev_totals_ = totals;
  reports_seen_ = n;
  updates_ += 1;
  return run;
}

}  // namespace numdist
