// Streaming server-side aggregation for SW collection.
//
// A deployment does not hold all raw reports in memory: reports arrive one
// at a time (possibly at several collector shards) and only the per-bucket
// counts are kept. StreamingAggregator is that server: O(1) per report,
// O(d~) state, shards merge by count addition, and the distribution can be
// reconstructed (EM/EMS) at any point without stopping ingestion.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/sw_estimator.h"

namespace numdist {

/// \brief Incremental report sink + on-demand reconstruction.
class StreamingAggregator {
 public:
  /// Builds an aggregator for the given estimator configuration.
  static Result<StreamingAggregator> Make(const SwEstimatorOptions& options);

  /// Builds an aggregator over an existing (immutable, thread-safe)
  /// estimator. A shard fleet shares one estimator instead of each shard
  /// re-deriving the transition model (see scenario/scenario.cc).
  static StreamingAggregator ForEstimator(
      std::shared_ptr<const SwEstimator> estimator);

  /// Ingests one client report (the value returned by
  /// SwEstimator::PerturbOne on the client). O(1).
  void Accept(double report);

  /// Ingests a batch of reports.
  void AcceptBatch(const std::vector<double>& reports);

  /// Merges another shard's counts into this one. The shards must have been
  /// created with identical options (checked: same bucket count).
  Status Merge(const StreamingAggregator& other);

  /// Merges raw per-bucket counts (a remote shard's state that crossed a
  /// process boundary as a wire snapshot frame — see wire/wire.h). The
  /// shape must match and the counts must sum to `n`; count addition is
  /// exact, so this is bit-identical to Merge on the source shard.
  Status MergeCounts(const std::vector<uint64_t>& counts, uint64_t n);

  /// Drops all ingested counts, keeping the (expensive to build) estimator.
  /// Lets a merge target be reused across rounds instead of reconstructing
  /// the transition model each time (see scenario/scenario.cc checkpoints).
  void Reset();

  /// Reports ingested so far.
  uint64_t count() const { return count_; }

  /// Current per-bucket report counts (size = output buckets).
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Reconstructs the input distribution from the counts seen so far.
  /// Requires count() > 0. Does not modify the aggregator.
  Result<EmResult> Snapshot() const;

  /// The underlying estimator (for clients: PerturbOne lives here).
  const SwEstimator& estimator() const { return *estimator_; }

 private:
  explicit StreamingAggregator(std::shared_ptr<const SwEstimator> estimator);

  std::shared_ptr<const SwEstimator> estimator_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
};

}  // namespace numdist
