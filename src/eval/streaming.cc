#include "eval/streaming.h"

#include <algorithm>
#include <utility>

namespace numdist {

Result<StreamingAggregator> StreamingAggregator::Make(
    const SwEstimatorOptions& options) {
  Result<SwEstimator> estimator = SwEstimator::Make(options);
  if (!estimator.ok()) return estimator.status();
  return StreamingAggregator(
      std::make_shared<const SwEstimator>(std::move(estimator).value()));
}

StreamingAggregator StreamingAggregator::ForEstimator(
    std::shared_ptr<const SwEstimator> estimator) {
  return StreamingAggregator(std::move(estimator));
}

StreamingAggregator::StreamingAggregator(
    std::shared_ptr<const SwEstimator> estimator)
    : estimator_(std::move(estimator)),
      counts_(estimator_->output_buckets(), 0) {}

void StreamingAggregator::Accept(double report) {
  ++counts_[estimator_->OutputBucketOf(report)];
  ++count_;
}

void StreamingAggregator::AcceptBatch(const std::vector<double>& reports) {
  const std::vector<uint64_t> batch = estimator_->Aggregate(reports);
  for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += batch[j];
  count_ += reports.size();
}

Status StreamingAggregator::Merge(const StreamingAggregator& other) {
  if (other.counts_.size() != counts_.size()) {
    return Status::InvalidArgument(
        "StreamingAggregator: shard bucket counts differ");
  }
  for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += other.counts_[j];
  count_ += other.count_;
  return Status::OK();
}

Status StreamingAggregator::MergeCounts(const std::vector<uint64_t>& counts,
                                        uint64_t n) {
  if (counts.size() != counts_.size()) {
    return Status::InvalidArgument(
        "StreamingAggregator: merged bucket counts differ in size");
  }
  // Every ingested report lands in exactly one bucket, so the counts must
  // sum to the report count — rejects corrupted but well-shaped state.
  // Overflow-checked so counts that wrap mod 2^64 back onto n don't pass.
  uint64_t total = 0;
  for (uint64_t c : counts) {
    if (c > UINT64_MAX - total) {
      return Status::InvalidArgument(
          "StreamingAggregator: merged counts overflow");
    }
    total += c;
  }
  if (total != n) {
    return Status::InvalidArgument(
        "StreamingAggregator: merged counts do not sum to the report count");
  }
  for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += counts[j];
  count_ += n;
  return Status::OK();
}

void StreamingAggregator::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
}

Result<EmResult> StreamingAggregator::Snapshot() const {
  if (count_ == 0) {
    return Status::FailedPrecondition(
        "StreamingAggregator: no reports ingested");
  }
  return estimator_->Reconstruct(counts_);
}

}  // namespace numdist
