#include "eval/streaming.h"

#include <utility>

namespace numdist {

Result<StreamingAggregator> StreamingAggregator::Make(
    const SwEstimatorOptions& options) {
  Result<SwEstimator> estimator = SwEstimator::Make(options);
  if (!estimator.ok()) return estimator.status();
  return StreamingAggregator(std::move(estimator).value());
}

StreamingAggregator::StreamingAggregator(SwEstimator estimator)
    : estimator_(std::move(estimator)),
      counts_(estimator_.output_buckets(), 0) {}

void StreamingAggregator::Accept(double report) {
  // Reuse the estimator's bucketization for a single report.
  const std::vector<uint64_t> one =
      estimator_.Aggregate(std::vector<double>{report});
  for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += one[j];
  ++count_;
}

void StreamingAggregator::AcceptBatch(const std::vector<double>& reports) {
  const std::vector<uint64_t> batch = estimator_.Aggregate(reports);
  for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += batch[j];
  count_ += reports.size();
}

Status StreamingAggregator::Merge(const StreamingAggregator& other) {
  if (other.counts_.size() != counts_.size()) {
    return Status::InvalidArgument(
        "StreamingAggregator: shard bucket counts differ");
  }
  for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += other.counts_[j];
  count_ += other.count_;
  return Status::OK();
}

Result<EmResult> StreamingAggregator::Snapshot() const {
  if (count_ == 0) {
    return Status::FailedPrecondition(
        "StreamingAggregator: no reports ingested");
  }
  return estimator_.Reconstruct(counts_);
}

}  // namespace numdist
