#include "eval/method.h"

#include <cassert>
#include <memory>
#include <utility>

#include "common/histogram.h"
#include "core/sw_estimator.h"
#include "fo/adaptive.h"
#include "hierarchy/admm.h"
#include "hierarchy/constrained.h"
#include "hierarchy/haar.h"
#include "hierarchy/hh.h"
#include "hierarchy/tree.h"
#include "metrics/queries.h"
#include "postprocess/norm_sub.h"

namespace numdist {

namespace {

// Range query backed by a reconstructed distribution histogram.
std::function<double(double, double)> DistributionRangeQuery(
    std::vector<double> dist) {
  return [dist = std::move(dist)](double lo, double alpha) {
    return RangeQuery(dist, lo, alpha);
  };
}

class SwMethod final : public DistributionMethod {
 public:
  explicit SwMethod(SwEstimatorOptions::Post post)
      : post_(post), name_(post == SwEstimatorOptions::Post::kEms ? "SW-EMS"
                                                                  : "SW-EM") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return true; }

  Result<MethodOutput> Run(const std::vector<double>& values, double epsilon,
                           size_t d, Rng& rng) const override {
    SwEstimatorOptions options;
    options.epsilon = epsilon;
    options.d = d;
    options.post = post_;
    Result<SwEstimator> est = SwEstimator::Make(options);
    if (!est.ok()) return est.status();
    Result<std::vector<double>> dist = est->EstimateDistribution(values, rng);
    if (!dist.ok()) return dist.status();
    MethodOutput out;
    out.distribution = std::move(dist).value();
    out.range_query = DistributionRangeQuery(out.distribution);
    return out;
  }

 private:
  SwEstimatorOptions::Post post_;
  std::string name_;
};

class CfoBinningMethod final : public DistributionMethod {
 public:
  explicit CfoBinningMethod(size_t bins)
      : bins_(bins), name_("CFO-bin-" + std::to_string(bins)) {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return true; }

  Result<MethodOutput> Run(const std::vector<double>& values, double epsilon,
                           size_t d, Rng& rng) const override {
    if (bins_ == 0 || d % bins_ != 0) {
      return Status::InvalidArgument(
          "CFO binning: bins must divide the reconstruction granularity");
    }
    Result<AdaptiveFo> fo = AdaptiveFo::Make(epsilon, bins_);
    if (!fo.ok()) return fo.status();
    std::vector<uint32_t> binned;
    binned.reserve(values.size());
    for (double v : values) {
      binned.push_back(static_cast<uint32_t>(hist::BucketOf(v, bins_)));
    }
    const std::vector<double> noisy = fo->Run(binned, rng);
    const std::vector<double> clean = NormSub(noisy, 1.0);
    // Expand to d buckets assuming a uniform distribution within each bin.
    const size_t chunk = d / bins_;
    MethodOutput out;
    out.distribution.resize(d);
    for (size_t c = 0; c < bins_; ++c) {
      const double share = clean[c] / static_cast<double>(chunk);
      for (size_t j = 0; j < chunk; ++j) {
        out.distribution[c * chunk + j] = share;
      }
    }
    out.range_query = DistributionRangeQuery(out.distribution);
    return out;
  }

 private:
  size_t bins_;
  std::string name_;
};

class HhMethod final : public DistributionMethod {
 public:
  explicit HhMethod(size_t beta) : beta_(beta), name_("HH") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return false; }

  Result<MethodOutput> Run(const std::vector<double>& values, double epsilon,
                           size_t d, Rng& rng) const override {
    Result<HhProtocol> protocol = HhProtocol::Make(epsilon, d, beta_);
    if (!protocol.ok()) return protocol.status();
    std::vector<uint32_t> leaves;
    leaves.reserve(values.size());
    for (double v : values) {
      leaves.push_back(static_cast<uint32_t>(hist::BucketOf(v, d)));
    }
    std::vector<double> nodes = protocol->CollectNodeEstimates(leaves, rng);
    nodes = ConstrainedInference(protocol->tree(), nodes, /*fix_root=*/true);
    MethodOutput out;
    // HH's estimates contain negatives: no valid distribution (Table 2);
    // range queries go straight to the consistent tree.
    auto tree = std::make_shared<HierarchyTree>(protocol->tree());
    out.range_query = [tree, nodes = std::move(nodes)](double lo,
                                                       double alpha) {
      return TreeRangeQueryContinuous(*tree, nodes, lo, lo + alpha);
    };
    return out;
  }

 private:
  size_t beta_;
  std::string name_;
};

class HaarHrrMethod final : public DistributionMethod {
 public:
  HaarHrrMethod() : name_("HaarHRR") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return false; }

  Result<MethodOutput> Run(const std::vector<double>& values, double epsilon,
                           size_t d, Rng& rng) const override {
    Result<HaarHrrProtocol> protocol = HaarHrrProtocol::Make(epsilon, d);
    if (!protocol.ok()) return protocol.status();
    std::vector<uint32_t> leaves;
    leaves.reserve(values.size());
    for (double v : values) {
      leaves.push_back(static_cast<uint32_t>(hist::BucketOf(v, d)));
    }
    std::vector<double> nodes = protocol->CollectNodeEstimates(leaves, rng);
    MethodOutput out;
    auto tree = std::make_shared<HierarchyTree>(protocol->tree());
    out.range_query = [tree, nodes = std::move(nodes)](double lo,
                                                       double alpha) {
      return TreeRangeQueryContinuous(*tree, nodes, lo, lo + alpha);
    };
    return out;
  }

 private:
  std::string name_;
};

class HhAdmmMethod final : public DistributionMethod {
 public:
  explicit HhAdmmMethod(size_t beta) : beta_(beta), name_("HH-ADMM") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return true; }

  Result<MethodOutput> Run(const std::vector<double>& values, double epsilon,
                           size_t d, Rng& rng) const override {
    Result<HhProtocol> protocol = HhProtocol::Make(epsilon, d, beta_);
    if (!protocol.ok()) return protocol.status();
    std::vector<uint32_t> leaves;
    leaves.reserve(values.size());
    for (double v : values) {
      leaves.push_back(static_cast<uint32_t>(hist::BucketOf(v, d)));
    }
    const std::vector<double> nodes =
        protocol->CollectNodeEstimates(leaves, rng);
    Result<AdmmResult> admm = HhAdmm(protocol->tree(), nodes);
    if (!admm.ok()) return admm.status();
    MethodOutput out;
    out.distribution = std::move(admm).value().distribution;
    out.range_query = DistributionRangeQuery(out.distribution);
    return out;
  }

 private:
  size_t beta_;
  std::string name_;
};

}  // namespace

std::unique_ptr<DistributionMethod> MakeSwEmsMethod() {
  return std::make_unique<SwMethod>(SwEstimatorOptions::Post::kEms);
}

std::unique_ptr<DistributionMethod> MakeSwEmMethod() {
  return std::make_unique<SwMethod>(SwEstimatorOptions::Post::kEm);
}

std::unique_ptr<DistributionMethod> MakeCfoBinningMethod(size_t bins) {
  return std::make_unique<CfoBinningMethod>(bins);
}

std::unique_ptr<DistributionMethod> MakeHhMethod(size_t beta) {
  return std::make_unique<HhMethod>(beta);
}

std::unique_ptr<DistributionMethod> MakeHaarHrrMethod() {
  return std::make_unique<HaarHrrMethod>();
}

std::unique_ptr<DistributionMethod> MakeHhAdmmMethod(size_t beta) {
  return std::make_unique<HhAdmmMethod>(beta);
}

std::vector<std::unique_ptr<DistributionMethod>> MakeStandardSuite() {
  std::vector<std::unique_ptr<DistributionMethod>> suite;
  suite.push_back(MakeSwEmsMethod());
  suite.push_back(MakeSwEmMethod());
  suite.push_back(MakeHhAdmmMethod());
  suite.push_back(MakeCfoBinningMethod(16));
  suite.push_back(MakeCfoBinningMethod(32));
  suite.push_back(MakeCfoBinningMethod(64));
  suite.push_back(MakeHhMethod());
  suite.push_back(MakeHaarHrrMethod());
  return suite;
}

}  // namespace numdist
