#include "eval/method.h"

#include <functional>
#include <utility>

#include "protocol/cfo_protocol.h"
#include "protocol/hierarchy_protocol.h"
#include "protocol/sw_protocol.h"

namespace numdist {

namespace {

// The only concrete method type: a name, the Table-2 capability flag, and
// the factory binding a Protocol at (epsilon, d). Everything else is the
// Protocol's business.
class ProtocolMethod final : public DistributionMethod {
 public:
  using Factory = std::function<Result<ProtocolPtr>(double, size_t)>;

  // `cache_key` must pin every factory parameter; empty means the name
  // already does.
  ProtocolMethod(std::string name, bool yields_distribution, Factory factory,
                 std::string cache_key = std::string())
      : name_(std::move(name)),
        cache_key_(cache_key.empty() ? name_ : std::move(cache_key)),
        yields_distribution_(yields_distribution),
        factory_(std::move(factory)) {}

  const std::string& name() const override { return name_; }
  const std::string& cache_key() const override { return cache_key_; }
  bool yields_distribution() const override { return yields_distribution_; }

  Result<ProtocolPtr> MakeProtocol(double epsilon, size_t d) const override {
    return factory_(epsilon, d);
  }

 private:
  std::string name_;
  std::string cache_key_;
  bool yields_distribution_;
  Factory factory_;
};

}  // namespace

Result<MethodOutput> DistributionMethod::Run(const std::vector<double>& values,
                                             double epsilon, size_t d,
                                             Rng& rng) const {
  Result<ProtocolPtr> protocol = MakeProtocol(epsilon, d);
  if (!protocol.ok()) return protocol.status();
  return RunProtocol(*protocol.value(), values, rng);
}

std::unique_ptr<DistributionMethod> MakeSwEmsMethod() {
  return std::make_unique<ProtocolMethod>(
      "SW-EMS", /*yields_distribution=*/true, [](double epsilon, size_t d) {
        SwEstimatorOptions options;
        options.epsilon = epsilon;
        options.d = d;
        options.post = SwEstimatorOptions::Post::kEms;
        return MakeSwProtocol(options);
      });
}

std::unique_ptr<DistributionMethod> MakeSwEmMethod() {
  return std::make_unique<ProtocolMethod>(
      "SW-EM", /*yields_distribution=*/true, [](double epsilon, size_t d) {
        SwEstimatorOptions options;
        options.epsilon = epsilon;
        options.d = d;
        options.post = SwEstimatorOptions::Post::kEm;
        return MakeSwProtocol(options);
      });
}

std::unique_ptr<DistributionMethod> MakeCfoBinningMethod(size_t bins) {
  return std::make_unique<ProtocolMethod>(
      "CFO-bin-" + std::to_string(bins), /*yields_distribution=*/true,
      [bins](double epsilon, size_t d) {
        return MakeCfoBinningProtocol(epsilon, d, bins);
      });
}

std::unique_ptr<DistributionMethod> MakeHhMethod(size_t beta) {
  return std::make_unique<ProtocolMethod>(
      "HH", /*yields_distribution=*/false,
      [beta](double epsilon, size_t d) {
        return MakeHhBatchedProtocol(epsilon, d, beta, HhPost::kConstrained);
      },
      "HH/beta=" + std::to_string(beta));
}

std::unique_ptr<DistributionMethod> MakeHaarHrrMethod() {
  return std::make_unique<ProtocolMethod>(
      "HaarHRR", /*yields_distribution=*/false, [](double epsilon, size_t d) {
        return MakeHaarHrrBatchedProtocol(epsilon, d);
      });
}

std::unique_ptr<DistributionMethod> MakeHhAdmmMethod(size_t beta) {
  return std::make_unique<ProtocolMethod>(
      "HH-ADMM", /*yields_distribution=*/true,
      [beta](double epsilon, size_t d) {
        return MakeHhBatchedProtocol(epsilon, d, beta, HhPost::kAdmm);
      },
      "HH-ADMM/beta=" + std::to_string(beta));
}

std::vector<std::unique_ptr<DistributionMethod>> MakeStandardSuite() {
  std::vector<std::unique_ptr<DistributionMethod>> suite;
  suite.push_back(MakeSwEmsMethod());
  suite.push_back(MakeSwEmMethod());
  suite.push_back(MakeHhAdmmMethod());
  suite.push_back(MakeCfoBinningMethod(16));
  suite.push_back(MakeCfoBinningMethod(32));
  suite.push_back(MakeCfoBinningMethod(64));
  suite.push_back(MakeHhMethod());
  suite.push_back(MakeHaarHrrMethod());
  return suite;
}

}  // namespace numdist
