#include "eval/runner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>

#include "common/executor.h"
#include "common/histogram.h"
#include "metrics/distance.h"
#include "metrics/queries.h"
#include "protocol/sharded.h"

namespace numdist {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Process-wide cache of constructed protocols keyed by (method cache_key,
// epsilon, d). Construction is deterministic and instances are immutable
// after Make (trials already share one across threads), so handing the same
// protocol to every RunTrials call with the same configuration cannot change
// results — it only skips rebuilding the transition/observation models per
// dataset or repeated bench invocation. Bounded: the table is dropped
// wholesale when it grows past kMaxCachedProtocols (an SW protocol at
// d = 1024 holds an 8 MB dense matrix).
class ProtocolCache {
 public:
  static ProtocolCache& Instance() {
    static ProtocolCache cache;
    return cache;
  }

  Result<std::shared_ptr<const Protocol>> GetOrMake(
      const DistributionMethod& method, double epsilon, size_t d) {
    // Key epsilon by its bit pattern: exact, and avoids FP-compare pitfalls.
    uint64_t eps_bits = 0;
    static_assert(sizeof(eps_bits) == sizeof(epsilon));
    std::memcpy(&eps_bits, &epsilon, sizeof(eps_bits));
    const Key key{method.cache_key(), eps_bits, d};
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    // Build outside the lock: construction can be expensive and two threads
    // racing on the same key just agree on whichever lands second.
    Result<ProtocolPtr> made = method.MakeProtocol(epsilon, d);
    if (!made.ok()) return made.status();
    std::shared_ptr<const Protocol> protocol(std::move(made).value());
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.size() >= kMaxCachedProtocols) cache_.clear();
    cache_[key] = protocol;
    return protocol;
  }

 private:
  static constexpr size_t kMaxCachedProtocols = 32;
  using Key = std::tuple<std::string, uint64_t, size_t>;

  std::mutex mu_;
  std::map<Key, std::shared_ptr<const Protocol>> cache_;
};

// Range-query MAE against a callable estimator (shared query points come
// from the caller's rng so truth and estimate see identical queries).
double RangeMaeAgainst(const std::vector<double>& truth,
                       const std::function<double(double, double)>& est,
                       double alpha, size_t num_queries, Rng& rng) {
  double acc = 0.0;
  for (size_t k = 0; k < num_queries; ++k) {
    const double lo = rng.Uniform() * (1.0 - alpha);
    acc += std::fabs(RangeQuery(truth, lo, alpha) - est(lo, alpha));
  }
  return acc / static_cast<double>(num_queries);
}

TrialMetrics EvaluateTrial(const MethodOutput& output,
                           const GroundTruth& truth,
                           const RunnerOptions& opts, Rng& rng) {
  TrialMetrics m;
  m.range_small = RangeMaeAgainst(truth.histogram, output.range_query,
                                  opts.alpha_small, opts.range_queries, rng);
  m.range_large = RangeMaeAgainst(truth.histogram, output.range_query,
                                  opts.alpha_large, opts.range_queries, rng);
  if (!output.distribution.empty()) {
    m.wasserstein = WassersteinDistance(truth.histogram, output.distribution);
    m.ks = KsDistance(truth.histogram, output.distribution);
    m.mean_err = std::fabs(truth.mean - HistMean(output.distribution));
    m.variance_err =
        std::fabs(truth.variance - HistVariance(output.distribution));
    m.quantile_err = QuantileMae(truth.histogram, output.distribution);
  } else {
    m.wasserstein = kNan;
    m.ks = kNan;
    m.mean_err = kNan;
    m.variance_err = kNan;
    m.quantile_err = kNan;
  }
  return m;
}

// Field-wise accumulation helpers (kept local; TrialMetrics is a plain
// record of doubles).
template <typename F>
void ForEachField(TrialMetrics& a, const TrialMetrics& b, F&& f) {
  f(a.wasserstein, b.wasserstein);
  f(a.ks, b.ks);
  f(a.range_small, b.range_small);
  f(a.range_large, b.range_large);
  f(a.mean_err, b.mean_err);
  f(a.variance_err, b.variance_err);
  f(a.quantile_err, b.quantile_err);
}

}  // namespace

GroundTruth ComputeGroundTruth(const std::vector<double>& values, size_t d) {
  GroundTruth truth;
  truth.histogram = hist::FromSamples(values, d);
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  truth.mean = mean;
  truth.variance = var;
  return truth;
}

Result<AggregateMetrics> RunTrials(const DistributionMethod& method,
                                   const std::vector<double>& values,
                                   const GroundTruth& truth, double epsilon,
                                   size_t d, const RunnerOptions& opts) {
  if (opts.trials == 0) {
    return Status::InvalidArgument("RunTrials: trials must be > 0");
  }
  if (values.empty()) {
    return Status::InvalidArgument("RunTrials: empty dataset");
  }

  // One Protocol instance serves every trial: it is immutable after
  // construction, so trials and their shard workers share it freely — and,
  // when opts.reuse_protocols, so do repeated RunTrials calls with the same
  // (method, epsilon, d), skipping identical model rebuilds per dataset.
  std::shared_ptr<const Protocol> protocol;
  if (opts.reuse_protocols) {
    Result<std::shared_ptr<const Protocol>> cached =
        ProtocolCache::Instance().GetOrMake(method, epsilon, d);
    if (!cached.ok()) return cached.status();
    protocol = std::move(cached).value();
  } else {
    Result<ProtocolPtr> made = method.MakeProtocol(epsilon, d);
    if (!made.ok()) return made.status();
    protocol = std::move(made).value();
  }

  // Two-level parallelism budget on the shared executor: independent
  // trials (including the expensive reconstruction step) fan out first,
  // and whatever budget is left over caps each trial's nested shard
  // accumulation. Results depend on neither level's schedule — trial
  // streams are fixed by (seed, t), shard streams by (trial_seed, i), and
  // all outputs are keyed by trial index — so any (threads, trials)
  // combination and any work-stealing schedule reproduces the
  // single-threaded metrics exactly.
  const size_t threads = ResolveThreadCount(opts.threads);
  const size_t trial_workers = std::min(threads, opts.trials);
  ShardOptions shard_opts;
  shard_opts.shard_size = opts.shard_size;
  shard_opts.threads = std::max<size_t>(1, threads / trial_workers);

  std::vector<TrialMetrics> metrics(opts.trials);
  std::vector<Status> failures(opts.trials, Status::OK());
  Executor::Shared().ParallelFor(
      opts.trials, trial_workers, [&](size_t t, size_t /*slot*/) {
        // Independent, reproducible stream family per trial; the shard
        // layer derives one stream per shard below it.
        const uint64_t trial_seed = ShardSeed(opts.seed, t);
        Result<MethodOutput> out =
            RunProtocolSharded(*protocol, values, trial_seed, shard_opts);
        if (!out.ok()) {
          failures[t] = out.status();
          return;
        }
        Rng query_rng(SplitMix64(opts.seed + 0x51ed2701 + t));
        metrics[t] = EvaluateTrial(out.value(), truth, opts, query_rng);
      });

  for (const Status& st : failures) {
    if (!st.ok()) return st;
  }

  AggregateMetrics agg;
  agg.trials = opts.trials;
  for (const TrialMetrics& m : metrics) {
    ForEachField(agg.mean, m, [](double& a, double b) { a += b; });
  }
  const double inv = 1.0 / static_cast<double>(opts.trials);
  ForEachField(agg.mean, agg.mean, [&](double& a, double) { a *= inv; });
  for (const TrialMetrics& m : metrics) {
    TrialMetrics diff = m;
    ForEachField(diff, agg.mean, [](double& a, double b) {
      const double delta = a - b;
      a = delta * delta;
    });
    ForEachField(agg.stddev, diff, [](double& a, double b) { a += b; });
  }
  ForEachField(agg.stddev, agg.stddev,
               [&](double& a, double) { a = std::sqrt(a * inv); });
  return agg;
}

}  // namespace numdist
