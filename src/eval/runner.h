// Experiment runner: repeats (method x dataset x epsilon) trials with
// independent seeds, multithreaded, and aggregates every §3 utility metric.
// All figure benches are thin loops over RunTrials.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "eval/method.h"

namespace numdist {

/// All §3 metrics for one trial. Distribution metrics are NaN when the
/// method yields no valid distribution (HH, HaarHRR).
struct TrialMetrics {
  double wasserstein = 0.0;
  double ks = 0.0;
  double range_small = 0.0;   ///< MAE of random range queries, alpha small
  double range_large = 0.0;   ///< MAE of random range queries, alpha large
  double mean_err = 0.0;      ///< |mu - mu^|
  double variance_err = 0.0;  ///< |sigma^2 - sigma^2^|
  double quantile_err = 0.0;  ///< mean |Q(beta) - Q^(beta)| over deciles
};

/// Mean and standard deviation of metrics across trials.
struct AggregateMetrics {
  TrialMetrics mean;
  TrialMetrics stddev;
  size_t trials = 0;
};

/// Trial-loop configuration.
struct RunnerOptions {
  size_t trials = 5;
  uint64_t seed = 42;
  /// Worker threads; 0 = hardware concurrency.
  size_t threads = 0;
  double alpha_small = 0.1;
  double alpha_large = 0.4;
  /// Random range queries per trial per alpha.
  size_t range_queries = 200;
};

/// Ground truth for an experiment: the dataset's exact histogram and moments.
struct GroundTruth {
  std::vector<double> histogram;  // d buckets
  double mean = 0.0;
  double variance = 0.0;
};

/// Computes the exact ground truth for `values` at granularity d
/// (moments from the raw values, not the histogram).
GroundTruth ComputeGroundTruth(const std::vector<double>& values, size_t d);

/// Runs `opts.trials` independent executions of `method` and aggregates the
/// metrics against the ground truth. Deterministic for a fixed seed.
Result<AggregateMetrics> RunTrials(const DistributionMethod& method,
                                   const std::vector<double>& values,
                                   const GroundTruth& truth, double epsilon,
                                   size_t d, const RunnerOptions& opts);

}  // namespace numdist
