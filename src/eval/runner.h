// Experiment runner: repeats (method x dataset x epsilon) trials and
// aggregates every §3 utility metric. All figure benches are thin loops
// over RunTrials.
//
// Execution model (adapter-over-Protocol): the method's Protocol is
// instantiated once per RunTrials call. The thread budget is split on two
// levels: independent trials (including the expensive reconstruction step)
// run in parallel, and each trial cuts the value stream into fixed-size
// shards — shard i is encoded+perturbed with its own RNG stream seeded by
// mix(trial_seed, i), shard workers fold into per-thread accumulators, and
// the accumulators are merged once before a single reconstruction. Because
// trial streams depend only on (seed, trial) and shard layout/seeds only on
// (trial_seed, shard_size) — never on the thread count at either level — a
// fixed-seed run produces bit-identical metrics for 1 or N threads.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "eval/method.h"

namespace numdist {

/// All §3 metrics for one trial. Distribution metrics are NaN when the
/// method yields no valid distribution (HH, HaarHRR).
struct TrialMetrics {
  double wasserstein = 0.0;
  double ks = 0.0;
  double range_small = 0.0;   ///< MAE of random range queries, alpha small
  double range_large = 0.0;   ///< MAE of random range queries, alpha large
  double mean_err = 0.0;      ///< |mu - mu^|
  double variance_err = 0.0;  ///< |sigma^2 - sigma^2^|
  double quantile_err = 0.0;  ///< mean |Q(beta) - Q^(beta)| over deciles
};

/// Mean and standard deviation of metrics across trials.
struct AggregateMetrics {
  TrialMetrics mean;
  TrialMetrics stddev;
  size_t trials = 0;
};

/// Trial-loop configuration.
struct RunnerOptions {
  size_t trials = 5;
  uint64_t seed = 42;
  /// Worker threads sharding each trial's report stream; 0 = hardware
  /// concurrency. The thread count never changes the results.
  size_t threads = 0;
  /// Values per report shard (see protocol/sharded.h).
  size_t shard_size = 8192;
  /// Reuse constructed Protocol instances (transition matrices, observation
  /// models) across RunTrials calls with the same (method, epsilon, d).
  /// Protocols are immutable after construction, so sharing is safe and
  /// never changes results; benches sweeping datasets stop rebuilding
  /// identical models. Disable for memory-sensitive one-shot runs.
  bool reuse_protocols = true;
  double alpha_small = 0.1;
  double alpha_large = 0.4;
  /// Random range queries per trial per alpha.
  size_t range_queries = 200;
};

/// Ground truth for an experiment: the dataset's exact histogram and moments.
struct GroundTruth {
  std::vector<double> histogram;  // d buckets
  double mean = 0.0;
  double variance = 0.0;
};

/// Computes the exact ground truth for `values` at granularity d
/// (moments from the raw values, not the histogram).
GroundTruth ComputeGroundTruth(const std::vector<double>& values, size_t d);

/// Runs `opts.trials` independent executions of `method`'s Protocol and
/// aggregates the metrics against the ground truth. Deterministic for a
/// fixed seed, independent of opts.threads.
Result<AggregateMetrics> RunTrials(const DistributionMethod& method,
                                   const std::vector<double>& values,
                                   const GroundTruth& truth, double epsilon,
                                   size_t d, const RunnerOptions& opts);

}  // namespace numdist
