#include "metrics/distance.h"

#include <cassert>
#include <cmath>

namespace numdist {

double WassersteinDistance(const std::vector<double>& x,
                           const std::vector<double>& y) {
  assert(x.size() == y.size() && !x.empty());
  double acc = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    cx += x[i];
    cy += y[i];
    acc += std::fabs(cx - cy);
  }
  return acc / static_cast<double>(x.size());
}

double KsDistance(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size() && !x.empty());
  double best = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    cx += x[i];
    cy += y[i];
    best = std::max(best, std::fabs(cx - cy));
  }
  return best;
}

double L1Distance(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += std::fabs(x[i] - y[i]);
  return acc;
}

double L2Distance(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double diff = x[i] - y[i];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

}  // namespace numdist
