// Distribution-distance metrics (paper §3.1). Both operate on d-bucket
// distributions over the canonical [0, 1] domain and reflect the ordered
// nature of the domain via the CDFs.
#pragma once

#include <vector>

namespace numdist {

/// 1-D Wasserstein (earth-mover) distance between two d-bucket distributions
/// over [0,1]: the integral of |CDF_x - CDF_y|, i.e. (1/d) * sum_i |P_i - Q_i|.
/// Requires x.size() == y.size() > 0.
double WassersteinDistance(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Kolmogorov-Smirnov distance: max_i |CDF_x(i) - CDF_y(i)|.
/// Requires x.size() == y.size() > 0.
double KsDistance(const std::vector<double>& x, const std::vector<double>& y);

/// Pointwise L1 distance sum_i |x_i - y_i| (diagnostic; the paper argues
/// CDF-based metrics are the right ones for numerical domains).
double L1Distance(const std::vector<double>& x, const std::vector<double>& y);

/// Pointwise L2 distance sqrt(sum_i (x_i - y_i)^2) (diagnostic).
double L2Distance(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace numdist
