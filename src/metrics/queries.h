// Semantic/statistical utility metrics (paper §3.2): range queries, mean,
// variance, quantiles — all computed from d-bucket distributions over [0,1].
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace numdist {

/// CDF value P(x, t) for t in [0, 1], with linear interpolation inside the
/// bucket containing t (mass assumed uniform within a bucket).
double CdfAt(const std::vector<double>& x, double t);

/// Range query R(x, i, alpha) = P(x, i + alpha) - P(x, i) (paper §3.2).
/// Requires 0 <= i and i + alpha <= 1.
double RangeQuery(const std::vector<double>& x, double i, double alpha);

/// Mean absolute range-query error over `num_queries` uniformly random
/// left endpoints i in [0, 1 - alpha], for fixed range size alpha.
double RangeQueryMae(const std::vector<double>& truth,
                     const std::vector<double>& estimate, double alpha,
                     size_t num_queries, Rng& rng);

/// Mean of the distribution (bucket centers).
double HistMean(const std::vector<double>& x);

/// Variance of the distribution (bucket centers).
double HistVariance(const std::vector<double>& x);

/// beta-quantile: the smallest t in [0,1] with P(x, t) >= beta, located by
/// linear interpolation within the crossing bucket.
double Quantile(const std::vector<double>& x, double beta);

/// Mean absolute quantile error over B = {10%, ..., 90%} (paper §3.2).
double QuantileMae(const std::vector<double>& truth,
                   const std::vector<double>& estimate);

}  // namespace numdist
