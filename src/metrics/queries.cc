#include "metrics/queries.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace numdist {

double CdfAt(const std::vector<double>& x, double t) {
  const size_t d = x.size();
  assert(d > 0);
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * static_cast<double>(d);
  const size_t full = std::min(static_cast<size_t>(pos), d);
  double acc = 0.0;
  for (size_t i = 0; i < full; ++i) acc += x[i];
  if (full < d) {
    acc += x[full] * (pos - static_cast<double>(full));
  }
  return acc;
}

double RangeQuery(const std::vector<double>& x, double i, double alpha) {
  assert(i >= 0.0 && alpha >= 0.0 && i + alpha <= 1.0 + 1e-12);
  return CdfAt(x, i + alpha) - CdfAt(x, i);
}

double RangeQueryMae(const std::vector<double>& truth,
                     const std::vector<double>& estimate, double alpha,
                     size_t num_queries, Rng& rng) {
  assert(truth.size() == estimate.size());
  assert(alpha > 0.0 && alpha <= 1.0);
  assert(num_queries > 0);
  // Precompute CDFs once: queries only need CDF lookups.
  double acc = 0.0;
  for (size_t k = 0; k < num_queries; ++k) {
    const double i = rng.Uniform() * (1.0 - alpha);
    acc += std::fabs(RangeQuery(truth, i, alpha) -
                     RangeQuery(estimate, i, alpha));
  }
  return acc / static_cast<double>(num_queries);
}

double HistMean(const std::vector<double>& x) {
  const size_t d = x.size();
  assert(d > 0);
  double mean = 0.0;
  for (size_t i = 0; i < d; ++i) {
    mean += x[i] * ((static_cast<double>(i) + 0.5) / static_cast<double>(d));
  }
  return mean;
}

double HistVariance(const std::vector<double>& x) {
  const size_t d = x.size();
  assert(d > 0);
  const double mean = HistMean(x);
  double var = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double c = (static_cast<double>(i) + 0.5) / static_cast<double>(d);
    var += x[i] * (c - mean) * (c - mean);
  }
  return var;
}

double Quantile(const std::vector<double>& x, double beta) {
  const size_t d = x.size();
  assert(d > 0);
  beta = std::clamp(beta, 0.0, 1.0);
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double next = acc + x[i];
    if (next >= beta) {
      // Interpolate within bucket i.
      const double frac = (x[i] > 0.0) ? (beta - acc) / x[i] : 0.0;
      return (static_cast<double>(i) + frac) / static_cast<double>(d);
    }
    acc = next;
  }
  return 1.0;
}

double QuantileMae(const std::vector<double>& truth,
                   const std::vector<double>& estimate) {
  assert(truth.size() == estimate.size());
  double acc = 0.0;
  int count = 0;
  for (int pct = 10; pct <= 90; pct += 10) {
    const double beta = static_cast<double>(pct) / 100.0;
    acc += std::fabs(Quantile(truth, beta) - Quantile(estimate, beta));
    ++count;
  }
  return acc / count;
}

}  // namespace numdist
