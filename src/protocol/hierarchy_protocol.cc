#include "protocol/hierarchy_protocol.h"

#include <memory>
#include <utility>

#include "common/histogram.h"
#include "hierarchy/admm.h"
#include "hierarchy/constrained.h"
#include "hierarchy/haar.h"
#include "hierarchy/tree.h"

namespace numdist {

namespace {

// Shared accumulator shape for both hierarchy families: one FoSketch per
// tree level, merged sketch-wise.
template <typename Report>
class LevelChunk final : public ReportChunk {
 public:
  size_t num_reports() const override { return reports.size(); }
  std::vector<Report> reports;
  size_t d = 0;  // tree granularity the chunk was encoded for
};

template <typename Report, typename Owner>
class LevelAccumulator final : public Accumulator {
 public:
  LevelAccumulator(const Owner* owner, std::vector<FoSketch> sketches)
      : owner_(owner), sketches_(std::move(sketches)) {}

  Status Absorb(const ReportChunk& chunk) override {
    const auto* level_chunk = dynamic_cast<const LevelChunk<Report>*>(&chunk);
    if (level_chunk == nullptr) {
      return Status::InvalidArgument(
          "hierarchy: chunk from a different protocol");
    }
    if (level_chunk->d != owner_->tree().d()) {
      return Status::InvalidArgument("hierarchy: chunk shape mismatch");
    }
    // Validate the whole chunk before folding anything so an error leaves
    // the sketches untouched.
    for (const Report& report : level_chunk->reports) {
      NUMDIST_RETURN_NOT_OK(owner_->ValidateReport(report));
    }
    for (const Report& report : level_chunk->reports) {
      NUMDIST_RETURN_NOT_OK(owner_->Absorb(report, &sketches_));
      ++n_;
    }
    return Status::OK();
  }

  Status Merge(const Accumulator& other) override {
    const auto* level_other =
        dynamic_cast<const LevelAccumulator<Report, Owner>*>(&other);
    if (level_other == nullptr ||
        level_other->sketches_.size() != sketches_.size()) {
      return Status::InvalidArgument("hierarchy: accumulator shape mismatch");
    }
    for (size_t t = 0; t < sketches_.size(); ++t) {
      if (sketches_[t].counts.size() !=
          level_other->sketches_[t].counts.size()) {
        return Status::InvalidArgument("hierarchy: sketch shape mismatch");
      }
      sketches_[t].Merge(level_other->sketches_[t]);
    }
    n_ += level_other->n_;
    return Status::OK();
  }

  uint64_t num_reports() const override { return n_; }
  const std::vector<FoSketch>& sketches() const { return sketches_; }

 private:
  const Owner* owner_;
  std::vector<FoSketch> sketches_;
  uint64_t n_ = 0;
};

// Client side, shared by both hierarchy families: bucketize raw values to
// leaves and perturb them through the collection protocol.
template <typename Report, typename Collection>
Result<std::unique_ptr<ReportChunk>> EncodeLevelChunk(
    const Collection& collection, std::span<const double> values, Rng& rng) {
  std::vector<uint32_t> leaves;
  leaves.reserve(values.size());
  const size_t d = collection.tree().d();
  for (double v : values) {
    leaves.push_back(static_cast<uint32_t>(hist::BucketOf(v, d)));
  }
  auto chunk = std::make_unique<LevelChunk<Report>>();
  chunk->d = d;
  collection.PerturbBatch(leaves, rng, &chunk->reports);
  return std::unique_ptr<ReportChunk>(std::move(chunk));
}

// Tree-backed range query over a consistent node-estimate vector.
std::function<double(double, double)> TreeQuery(
    std::shared_ptr<const HierarchyTree> tree, std::vector<double> nodes) {
  return [tree = std::move(tree), nodes = std::move(nodes)](double lo,
                                                            double alpha) {
    return TreeRangeQueryContinuous(*tree, nodes, lo, lo + alpha);
  };
}

class HhBatchedProtocol final : public Protocol {
 public:
  HhBatchedProtocol(HhProtocol collection, HhPost post)
      : collection_(std::move(collection)),
        post_(post),
        name_(post == HhPost::kAdmm ? "HH-ADMM" : "HH") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return post_ == HhPost::kAdmm; }
  size_t granularity() const override { return collection_.tree().d(); }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<LevelAccumulator<HhReport, HhProtocol>>(
        &collection_, collection_.MakeSketches());
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    return EncodeLevelChunk<HhReport>(collection_, values, rng);
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* level_acc =
        dynamic_cast<const LevelAccumulator<HhReport, HhProtocol>*>(&acc);
    if (level_acc == nullptr) {
      return Status::InvalidArgument("HH: accumulator from another protocol");
    }
    if (level_acc->num_reports() == 0) {
      return Status::InvalidArgument("HH: no reports absorbed");
    }
    std::vector<double> nodes =
        collection_.NodeEstimatesFromSketches(level_acc->sketches());
    MethodOutput out;
    if (post_ == HhPost::kAdmm) {
      Result<AdmmResult> admm = HhAdmm(collection_.tree(), nodes);
      if (!admm.ok()) return admm.status();
      out.distribution = std::move(admm).value().distribution;
      out.range_query = DistributionRangeQuery(out.distribution);
      return out;
    }
    nodes = ConstrainedInference(collection_.tree(), nodes, /*fix_root=*/true);
    // HH's estimates contain negatives: no valid distribution (Table 2);
    // range queries go straight to the consistent tree.
    auto tree = std::make_shared<const HierarchyTree>(collection_.tree());
    out.range_query = TreeQuery(std::move(tree), std::move(nodes));
    return out;
  }

 private:
  HhProtocol collection_;
  HhPost post_;
  std::string name_;
};

class HaarHrrBatchedProtocol final : public Protocol {
 public:
  explicit HaarHrrBatchedProtocol(HaarHrrProtocol collection)
      : collection_(std::move(collection)), name_("HaarHRR") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return false; }
  size_t granularity() const override { return collection_.tree().d(); }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<LevelAccumulator<HaarReport, HaarHrrProtocol>>(
        &collection_, collection_.MakeSketches());
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    return EncodeLevelChunk<HaarReport>(collection_, values, rng);
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* level_acc =
        dynamic_cast<const LevelAccumulator<HaarReport, HaarHrrProtocol>*>(
            &acc);
    if (level_acc == nullptr) {
      return Status::InvalidArgument(
          "HaarHRR: accumulator from another protocol");
    }
    if (level_acc->num_reports() == 0) {
      return Status::InvalidArgument("HaarHRR: no reports absorbed");
    }
    std::vector<double> nodes =
        collection_.NodeEstimatesFromSketches(level_acc->sketches());
    MethodOutput out;
    auto tree = std::make_shared<const HierarchyTree>(collection_.tree());
    out.range_query = TreeQuery(std::move(tree), std::move(nodes));
    return out;
  }

 private:
  HaarHrrProtocol collection_;
  std::string name_;
};

}  // namespace

Result<ProtocolPtr> MakeHhBatchedProtocol(double epsilon, size_t d,
                                          size_t beta, HhPost post,
                                          HhBudgetStrategy strategy) {
  Result<HhProtocol> collection = HhProtocol::Make(epsilon, d, beta, strategy);
  if (!collection.ok()) return collection.status();
  return ProtocolPtr(
      new HhBatchedProtocol(std::move(collection).value(), post));
}

Result<ProtocolPtr> MakeHaarHrrBatchedProtocol(double epsilon, size_t d) {
  Result<HaarHrrProtocol> collection = HaarHrrProtocol::Make(epsilon, d);
  if (!collection.ok()) return collection.status();
  return ProtocolPtr(new HaarHrrBatchedProtocol(std::move(collection).value()));
}

}  // namespace numdist
