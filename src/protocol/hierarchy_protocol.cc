#include "protocol/hierarchy_protocol.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/histogram.h"
#include "hierarchy/admm.h"
#include "hierarchy/constrained.h"
#include "hierarchy/haar.h"
#include "hierarchy/tree.h"

namespace numdist {

namespace {

// Shared accumulator shape for both hierarchy families: one FoSketch per
// tree level, merged sketch-wise.
template <typename Report>
class LevelChunk final : public ReportChunk {
 public:
  size_t num_reports() const override { return reports.size(); }
  std::vector<Report> reports;
  size_t d = 0;  // tree granularity the chunk was encoded for
};

template <typename Report, typename Owner>
class LevelAccumulator final : public Accumulator {
 public:
  /// `signed_counts`: HaarHRR level tables are signed Hadamard
  /// correlations in [-n, n]; HH level tables are categorical FO counts
  /// in [0, n]. ImportState validates imported state against the bound.
  LevelAccumulator(const Owner* owner, std::vector<FoSketch> sketches,
                   bool signed_counts)
      : owner_(owner),
        sketches_(std::move(sketches)),
        signed_counts_(signed_counts) {}

  Status Absorb(const ReportChunk& chunk) override {
    const auto* level_chunk = dynamic_cast<const LevelChunk<Report>*>(&chunk);
    if (level_chunk == nullptr) {
      return Status::InvalidArgument(
          "hierarchy: chunk from a different protocol");
    }
    if (level_chunk->d != owner_->tree().d()) {
      return Status::InvalidArgument("hierarchy: chunk shape mismatch");
    }
    // Validate the whole chunk before folding anything so an error leaves
    // the sketches untouched.
    for (const Report& report : level_chunk->reports) {
      NUMDIST_RETURN_NOT_OK(owner_->ValidateReport(report));
    }
    for (const Report& report : level_chunk->reports) {
      NUMDIST_RETURN_NOT_OK(owner_->Absorb(report, &sketches_));
      ++n_;
    }
    return Status::OK();
  }

  Status Merge(const Accumulator& other) override {
    const auto* level_other =
        dynamic_cast<const LevelAccumulator<Report, Owner>*>(&other);
    if (level_other == nullptr ||
        level_other->sketches_.size() != sketches_.size()) {
      return Status::InvalidArgument("hierarchy: accumulator shape mismatch");
    }
    for (size_t t = 0; t < sketches_.size(); ++t) {
      if (sketches_[t].counts.size() !=
          level_other->sketches_[t].counts.size()) {
        return Status::InvalidArgument("hierarchy: sketch shape mismatch");
      }
      sketches_[t].Merge(level_other->sketches_[t]);
    }
    n_ += level_other->n_;
    return Status::OK();
  }

  uint64_t num_reports() const override { return n_; }
  const std::vector<FoSketch>& sketches() const { return sketches_; }

  AccumulatorState ExportState() const override {
    AccumulatorState state;
    state.num_reports = n_;
    state.tables.reserve(sketches_.size());
    for (const FoSketch& sketch : sketches_) {
      state.tables.push_back(AccumulatorTable{sketch.counts, sketch.n});
    }
    return state;
  }

  Status ImportState(const AccumulatorState& state) override {
    if (state.tables.size() != sketches_.size()) {
      return Status::InvalidArgument(
          "hierarchy: accumulator state level count mismatch");
    }
    uint64_t total = 0;
    for (size_t t = 0; t < sketches_.size(); ++t) {
      if (state.tables[t].counts.size() != sketches_[t].counts.size()) {
        return Status::InvalidArgument(
            "hierarchy: accumulator state sketch shape mismatch");
      }
      // Overflow-checked: per-level counts crafted to wrap mod 2^64 back
      // onto the total must not pass the consistency check below.
      if (state.tables[t].n > UINT64_MAX - total) {
        return Status::InvalidArgument(
            "hierarchy: per-level report counts overflow");
      }
      total += state.tables[t].n;
    }
    // Every absorbed report lands in exactly one level sketch, so the
    // per-level counts must sum to the total — rejects corrupted state
    // that happens to be well-shaped.
    if (total != state.num_reports) {
      return Status::InvalidArgument(
          "hierarchy: per-level report counts do not sum to the total");
    }
    // Per-cell bounds: each report contributes at most one unit (signed
    // for Haar correlations, unsigned for HH category/support counts) to
    // each cell of its level, so a count outside the level's [lo, n] band
    // is corruption, not data — same poisoned-state defense as the SW and
    // CFO imports.
    for (const AccumulatorTable& table : state.tables) {
      const int64_t hi = static_cast<int64_t>(
          std::min<uint64_t>(table.n, static_cast<uint64_t>(INT64_MAX)));
      const int64_t lo = signed_counts_ ? -hi : 0;
      for (int64_t c : table.counts) {
        if (c < lo || c > hi) {
          return Status::InvalidArgument(
              "hierarchy: sketch count outside the level's valid range");
        }
      }
    }
    for (size_t t = 0; t < sketches_.size(); ++t) {
      sketches_[t].counts = state.tables[t].counts;
      sketches_[t].n = state.tables[t].n;
    }
    n_ = state.num_reports;
    return Status::OK();
  }

 private:
  const Owner* owner_;
  std::vector<FoSketch> sketches_;
  bool signed_counts_;
  uint64_t n_ = 0;
};

// Per-report wire layouts (docs/WIRE_FORMAT.md). HH reports are a tree
// level plus a categorical FO report; HaarHRR reports are an internal level
// plus a (Hadamard column, ±1 bit) pair — the sign travels as 0/1.
constexpr size_t kHhReportWireBytes =
    sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint32_t);
constexpr size_t kHaarReportWireBytes =
    sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint8_t);

size_t ReportWireBytes(const HhReport*) { return kHhReportWireBytes; }
size_t ReportWireBytes(const HaarReport*) { return kHaarReportWireBytes; }

void EncodeReport(const HhReport& r, ByteWriter* out) {
  out->PutU32(r.level);
  out->PutU64(r.report.seed);
  out->PutU32(r.report.value);
}

Status DecodeReport(ByteReader* in, HhReport* r) {
  NUMDIST_ASSIGN_OR_RETURN(r->level, in->U32());
  NUMDIST_ASSIGN_OR_RETURN(r->report.seed, in->U64());
  NUMDIST_ASSIGN_OR_RETURN(r->report.value, in->U32());
  return Status::OK();
}

void EncodeReport(const HaarReport& r, ByteWriter* out) {
  out->PutU32(r.level);
  out->PutU32(r.report.col);
  out->PutU8(r.report.bit > 0 ? 1 : 0);
}

Status DecodeReport(ByteReader* in, HaarReport* r) {
  NUMDIST_ASSIGN_OR_RETURN(r->level, in->U32());
  NUMDIST_ASSIGN_OR_RETURN(r->report.col, in->U32());
  NUMDIST_ASSIGN_OR_RETURN(const uint8_t sign, in->U8());
  if (sign > 1) {
    return Status::InvalidArgument("HaarHRR: bad sign byte in chunk payload");
  }
  r->report.bit = sign == 1 ? 1 : -1;
  return Status::OK();
}

// Chunk payload shared by both hierarchy families: u32 tree granularity,
// u64 report count, then the per-report records.
template <typename Report>
Status EncodeLevelChunkPayload(const ReportChunk& chunk, ByteWriter* out,
                               const char* family) {
  const auto* level_chunk = dynamic_cast<const LevelChunk<Report>*>(&chunk);
  if (level_chunk == nullptr) {
    return Status::InvalidArgument(std::string(family) +
                                   ": chunk from a different protocol");
  }
  out->PutU32(static_cast<uint32_t>(level_chunk->d));
  out->PutU64(level_chunk->reports.size());
  for (const Report& report : level_chunk->reports) EncodeReport(report, out);
  return Status::OK();
}

template <typename Report>
Result<std::unique_ptr<ReportChunk>> DecodeLevelChunkPayload(
    ByteReader* in, size_t expected_d, const char* family) {
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t d, in->U32());
  if (d != expected_d) {
    return Status::InvalidArgument(
        std::string(family) +
        ": chunk tree granularity does not match this protocol");
  }
  NUMDIST_ASSIGN_OR_RETURN(const uint64_t count, in->U64());
  if (count > in->remaining() / ReportWireBytes(
                                    static_cast<const Report*>(nullptr))) {
    return Status::OutOfRange(std::string(family) +
                              ": chunk report count exceeds the remaining "
                              "payload");
  }
  auto chunk = std::make_unique<LevelChunk<Report>>();
  chunk->d = d;
  chunk->reports.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    NUMDIST_RETURN_NOT_OK(DecodeReport(in, &chunk->reports[i]));
  }
  return std::unique_ptr<ReportChunk>(std::move(chunk));
}

// Client side, shared by both hierarchy families: bucketize raw values to
// leaves and perturb them through the collection protocol.
template <typename Report, typename Collection>
Result<std::unique_ptr<ReportChunk>> EncodeLevelChunk(
    const Collection& collection, std::span<const double> values, Rng& rng) {
  std::vector<uint32_t> leaves;
  leaves.reserve(values.size());
  const size_t d = collection.tree().d();
  for (double v : values) {
    leaves.push_back(static_cast<uint32_t>(hist::BucketOf(v, d)));
  }
  auto chunk = std::make_unique<LevelChunk<Report>>();
  chunk->d = d;
  collection.PerturbBatch(leaves, rng, &chunk->reports);
  return std::unique_ptr<ReportChunk>(std::move(chunk));
}

// Tree-backed range query over a consistent node-estimate vector.
std::function<double(double, double)> TreeQuery(
    std::shared_ptr<const HierarchyTree> tree, std::vector<double> nodes) {
  return [tree = std::move(tree), nodes = std::move(nodes)](double lo,
                                                            double alpha) {
    return TreeRangeQueryContinuous(*tree, nodes, lo, lo + alpha);
  };
}

class HhBatchedProtocol final : public Protocol {
 public:
  HhBatchedProtocol(HhProtocol collection, HhPost post)
      : collection_(std::move(collection)),
        post_(post),
        name_(post == HhPost::kAdmm ? "HH-ADMM" : "HH") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return post_ == HhPost::kAdmm; }
  size_t granularity() const override { return collection_.tree().d(); }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<LevelAccumulator<HhReport, HhProtocol>>(
        &collection_, collection_.MakeSketches(), /*signed_counts=*/false);
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    return EncodeLevelChunk<HhReport>(collection_, values, rng);
  }

  Status EncodeChunkPayload(const ReportChunk& chunk,
                            ByteWriter* out) const override {
    return EncodeLevelChunkPayload<HhReport>(chunk, out, "HH");
  }

  Result<std::unique_ptr<ReportChunk>> DecodeChunkPayload(
      ByteReader* in) const override {
    return DecodeLevelChunkPayload<HhReport>(in, collection_.tree().d(), "HH");
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* level_acc =
        dynamic_cast<const LevelAccumulator<HhReport, HhProtocol>*>(&acc);
    if (level_acc == nullptr) {
      return Status::InvalidArgument("HH: accumulator from another protocol");
    }
    if (level_acc->num_reports() == 0) {
      return Status::InvalidArgument("HH: no reports absorbed");
    }
    std::vector<double> nodes =
        collection_.NodeEstimatesFromSketches(level_acc->sketches());
    MethodOutput out;
    if (post_ == HhPost::kAdmm) {
      Result<AdmmResult> admm = HhAdmm(collection_.tree(), nodes);
      if (!admm.ok()) return admm.status();
      out.distribution = std::move(admm).value().distribution;
      out.range_query = DistributionRangeQuery(out.distribution);
      return out;
    }
    nodes = ConstrainedInference(collection_.tree(), nodes, /*fix_root=*/true);
    // HH's estimates contain negatives: no valid distribution (Table 2);
    // range queries go straight to the consistent tree.
    auto tree = std::make_shared<const HierarchyTree>(collection_.tree());
    out.range_query = TreeQuery(std::move(tree), std::move(nodes));
    return out;
  }

 private:
  HhProtocol collection_;
  HhPost post_;
  std::string name_;
};

class HaarHrrBatchedProtocol final : public Protocol {
 public:
  explicit HaarHrrBatchedProtocol(HaarHrrProtocol collection)
      : collection_(std::move(collection)), name_("HaarHRR") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return false; }
  size_t granularity() const override { return collection_.tree().d(); }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<LevelAccumulator<HaarReport, HaarHrrProtocol>>(
        &collection_, collection_.MakeSketches(), /*signed_counts=*/true);
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    return EncodeLevelChunk<HaarReport>(collection_, values, rng);
  }

  Status EncodeChunkPayload(const ReportChunk& chunk,
                            ByteWriter* out) const override {
    return EncodeLevelChunkPayload<HaarReport>(chunk, out, "HaarHRR");
  }

  Result<std::unique_ptr<ReportChunk>> DecodeChunkPayload(
      ByteReader* in) const override {
    return DecodeLevelChunkPayload<HaarReport>(in, collection_.tree().d(),
                                               "HaarHRR");
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* level_acc =
        dynamic_cast<const LevelAccumulator<HaarReport, HaarHrrProtocol>*>(
            &acc);
    if (level_acc == nullptr) {
      return Status::InvalidArgument(
          "HaarHRR: accumulator from another protocol");
    }
    if (level_acc->num_reports() == 0) {
      return Status::InvalidArgument("HaarHRR: no reports absorbed");
    }
    std::vector<double> nodes =
        collection_.NodeEstimatesFromSketches(level_acc->sketches());
    MethodOutput out;
    auto tree = std::make_shared<const HierarchyTree>(collection_.tree());
    out.range_query = TreeQuery(std::move(tree), std::move(nodes));
    return out;
  }

 private:
  HaarHrrProtocol collection_;
  std::string name_;
};

}  // namespace

Result<ProtocolPtr> MakeHhBatchedProtocol(double epsilon, size_t d,
                                          size_t beta, HhPost post,
                                          HhBudgetStrategy strategy) {
  Result<HhProtocol> collection = HhProtocol::Make(epsilon, d, beta, strategy);
  if (!collection.ok()) return collection.status();
  return ProtocolPtr(
      new HhBatchedProtocol(std::move(collection).value(), post));
}

Result<ProtocolPtr> MakeHaarHrrBatchedProtocol(double epsilon, size_t d) {
  Result<HaarHrrProtocol> collection = HaarHrrProtocol::Make(epsilon, d);
  if (!collection.ok()) return collection.status();
  return ProtocolPtr(new HaarHrrBatchedProtocol(std::move(collection).value()));
}

}  // namespace numdist
