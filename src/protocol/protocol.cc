#include "protocol/protocol.h"

#include <utility>

#include "metrics/queries.h"

namespace numdist {

Result<MethodOutput> RunProtocol(const Protocol& protocol,
                                 std::span<const double> values, Rng& rng) {
  if (values.empty()) {
    return Status::InvalidArgument(protocol.name() + ": no input values");
  }
  Result<std::unique_ptr<ReportChunk>> chunk =
      protocol.EncodePerturbBatch(values, rng);
  if (!chunk.ok()) return chunk.status();
  std::unique_ptr<Accumulator> acc = protocol.MakeAccumulator();
  NUMDIST_RETURN_NOT_OK(acc->Absorb(*chunk.value()));
  return protocol.Reconstruct(*acc);
}

std::function<double(double, double)> DistributionRangeQuery(
    std::vector<double> dist) {
  return [dist = std::move(dist)](double lo, double alpha) {
    return RangeQuery(dist, lo, alpha);
  };
}

}  // namespace numdist
