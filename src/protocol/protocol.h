// The batched Protocol abstraction every mechanism in the library runs
// behind (SW + EM/EMS, CFO binning over any frequency oracle, HH, HH-ADMM,
// HaarHRR). The paper's pipeline — client randomization (§5.2), server
// aggregation, EM/EMS or hierarchy reconstruction (§5.5, §4.2-4.3) —
// generalizes to one explicit three-stage contract:
//
//   1. EncodePerturbBatch(values, rng) -> ReportChunk
//        Client side. Encodes and perturbs a batch of raw values in [0,1]
//        into the mechanism's wire format. Pure function of (values, rng
//        stream): shards with fixed RNG streams are bit-reproducible.
//   2. Accumulator::Absorb(chunk) / Merge(other)
//        Server side. Folds chunks into compact aggregation state (exact
//        integer counts/sketches for every built-in protocol, so Merge is
//        associative and thread-count independent). One accumulator per
//        worker thread, merged once at the end.
//   3. Reconstruct(accumulator) -> MethodOutput
//        Server side, once: inverts the aggregate into the estimated
//        distribution and/or range-query oracle.
//
// Lifetimes: chunks and accumulators hold state only; they must not outlive
// the Protocol that created them, and they only compose with accumulators /
// chunks from the same Protocol instance's family (same shape).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// One count table of an AccumulatorState, plus the number of reports
/// attributed to it. Single-table protocols (SW, CFO) use one entry; the
/// hierarchy protocols keep one table per tree level, each with its own
/// per-level report count (level groups normalize independently).
struct AccumulatorTable {
  std::vector<int64_t> counts;
  uint64_t n = 0;
};

/// \brief Portable exact-integer snapshot of an Accumulator.
///
/// Every built-in accumulator is exact integer state, so exporting,
/// shipping, and re-importing it is lossless: ImportState followed by Merge
/// on another process reproduces the bit-identical aggregate the
/// in-process path would have built. The wire layer (src/wire/) serializes
/// this into versioned sketch frames.
struct AccumulatorState {
  std::vector<AccumulatorTable> tables;
  uint64_t num_reports = 0;
};

/// What one protocol run produces.
struct MethodOutput {
  /// Reconstructed d-bucket distribution over [0,1]. Empty when the method
  /// cannot produce a valid distribution (HH, HaarHRR — their estimates
  /// contain negatives and are evaluated on range queries only, per Table 2).
  std::vector<double> distribution;
  /// Answers R(lo, alpha) = mass of [lo, lo+alpha]. Always callable; for
  /// hierarchy methods this queries the tree directly.
  std::function<double(double lo, double alpha)> range_query;
};

/// \brief One client shard's perturbed reports, in the mechanism's wire
/// format. Opaque to callers; produced by Protocol::EncodePerturbBatch and
/// consumed by Accumulator::Absorb.
class ReportChunk {
 public:
  virtual ~ReportChunk() = default;
  /// Reports carried (>= the number of encoded values for multi-report
  /// strategies such as HH divide-budget).
  virtual size_t num_reports() const = 0;
};

/// \brief Mergeable server-side aggregation state.
class Accumulator {
 public:
  virtual ~Accumulator() = default;
  /// Folds one chunk in. Fails on a chunk from a different protocol family.
  virtual Status Absorb(const ReportChunk& chunk) = 0;
  /// Adds another accumulator's state (exact, associative for all built-in
  /// protocols). Fails on a shape mismatch.
  virtual Status Merge(const Accumulator& other) = 0;
  /// Reports absorbed so far (across merges).
  virtual uint64_t num_reports() const = 0;
  /// Exports the exact integer aggregation state for transport (see
  /// AccumulatorState). Lossless for every built-in protocol.
  virtual AccumulatorState ExportState() const = 0;
  /// Replaces this accumulator's state with `state`. The shape (table count
  /// and per-table sizes) must match this accumulator's family; mismatches
  /// are InvalidArgument and leave the accumulator unchanged. Typically
  /// called on a fresh accumulator when decoding a wire sketch frame,
  /// which is then Merge()d into the coordinator's aggregate.
  virtual Status ImportState(const AccumulatorState& state) = 0;
};

/// \brief A distribution-estimation protocol under the batched contract.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Display name, e.g. "SW-EMS", "CFO-bin-32".
  virtual const std::string& name() const = 0;
  /// True iff Reconstruct fills MethodOutput::distribution.
  virtual bool yields_distribution() const = 0;
  /// Reconstruction granularity d.
  virtual size_t granularity() const = 0;

  /// Fresh, empty aggregation state.
  virtual std::unique_ptr<Accumulator> MakeAccumulator() const = 0;

  /// Client side: encodes + perturbs a batch of raw values in [0,1].
  virtual Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const = 0;

  /// Server side: inverts the aggregate into the method output.
  /// Requires acc.num_reports() > 0.
  virtual Result<MethodOutput> Reconstruct(const Accumulator& acc) const = 0;

  /// Serializes one of this protocol's chunks for wire transport. The
  /// payload layout is family-specific and documented byte-by-byte in
  /// docs/WIRE_FORMAT.md; framing, versioning, and method identification
  /// are the wire layer's job (src/wire/), not the payload's.
  virtual Status EncodeChunkPayload(const ReportChunk& chunk,
                                    ByteWriter* out) const = 0;
  /// Strictly decodes a chunk payload produced by EncodeChunkPayload.
  /// Truncation and shape mismatches (wrong domain/granularity for this
  /// protocol instance) are typed errors; the returned chunk behaves
  /// exactly like a locally encoded one under Absorb.
  virtual Result<std::unique_ptr<ReportChunk>> DecodeChunkPayload(
      ByteReader* in) const = 0;
};

using ProtocolPtr = std::unique_ptr<Protocol>;

/// Convenience single-chunk execution: one EncodePerturbBatch over all
/// values, one Absorb, one Reconstruct. The sharded many-chunk variant
/// lives in protocol/sharded.h.
Result<MethodOutput> RunProtocol(const Protocol& protocol,
                                 std::span<const double> values, Rng& rng);

/// Range-query oracle backed by a reconstructed distribution histogram.
std::function<double(double, double)> DistributionRangeQuery(
    std::vector<double> dist);

}  // namespace numdist
