// Square Wave reporting + EM/EMS reconstruction behind the batched
// Protocol contract (paper §5). Clients perturb values through the
// continuous or discrete SW mechanism; the accumulator keeps only the
// per-output-bucket report counts (O(d~) state, exact integer merge); the
// reconstruction step runs EM or EMS once on the merged counts.
#pragma once

#include "core/sw_estimator.h"
#include "protocol/protocol.h"

namespace numdist {

/// Builds the SW protocol for the given estimator configuration. The name
/// is "SW-EMS" or "SW-EM" according to `options.post`.
Result<ProtocolPtr> MakeSwProtocol(const SwEstimatorOptions& options);

}  // namespace numdist
