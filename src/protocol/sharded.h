// Deterministic sharded execution of a batched Protocol.
//
// The value stream is cut into fixed-size shards (a function of the data
// and shard_size only — never of the thread count). Shard i is encoded with
// its own RNG stream seeded by mix(seed, i), so the set of report chunks is
// identical no matter how many workers run. Execution goes through the
// persistent work-stealing Executor (common/executor.h): participants fold
// the shards they claim into per-slot accumulators, merged once at the
// end. Because every built-in accumulator is exact integer state with
// commutative, associative merges, the aggregate — and therefore the
// reconstructed estimate — is bit-identical for 1 or N threads, any
// stealing schedule, and pool reuse, given a fixed seed.
#pragma once

#include <cstdint>
#include <span>

#include "protocol/protocol.h"

namespace numdist {

/// Sharded-execution configuration.
struct ShardOptions {
  /// Values per shard (and per report chunk). Determines the work
  /// granularity; results do not depend on it beyond RNG stream layout.
  size_t shard_size = 8192;
  /// Parallelism cap on the shared executor; 0 = hardware concurrency.
  size_t threads = 0;
};

/// The RNG seed of shard `shard` under run seed `seed` (exposed so tests
/// can reproduce a single shard's stream).
uint64_t ShardSeed(uint64_t seed, size_t shard);

/// Encodes + perturbs every value shard-by-shard and returns the merged
/// accumulator. Deterministic for a fixed (seed, shard_size) regardless of
/// opts.threads.
Result<std::unique_ptr<Accumulator>> AccumulateSharded(
    const Protocol& protocol, std::span<const double> values, uint64_t seed,
    const ShardOptions& opts = {});

/// AccumulateSharded + Reconstruct.
Result<MethodOutput> RunProtocolSharded(const Protocol& protocol,
                                        std::span<const double> values,
                                        uint64_t seed,
                                        const ShardOptions& opts = {});

}  // namespace numdist
