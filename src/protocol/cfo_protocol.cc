#include "protocol/cfo_protocol.h"

#include <utility>

#include "common/histogram.h"
#include "postprocess/norm_sub.h"

namespace numdist {

namespace {

class CfoChunk final : public ReportChunk {
 public:
  size_t num_reports() const override { return chunk.n; }
  FoChunk chunk;
  size_t domain = 0;  // oracle domain the chunk was encoded for
};

class CfoAccumulator final : public Accumulator {
 public:
  explicit CfoAccumulator(const BatchedFo* fo)
      : fo_(fo), sketch_(fo->MakeSketch()) {}

  Status Absorb(const ReportChunk& chunk) override {
    const auto* cfo_chunk = dynamic_cast<const CfoChunk*>(&chunk);
    if (cfo_chunk == nullptr) {
      return Status::InvalidArgument("CFO: chunk from a different protocol");
    }
    if (cfo_chunk->domain != fo_->domain()) {
      return Status::InvalidArgument("CFO: chunk domain mismatch");
    }
    return fo_->Absorb(cfo_chunk->chunk, &sketch_);
  }

  Status Merge(const Accumulator& other) override {
    const auto* cfo_other = dynamic_cast<const CfoAccumulator*>(&other);
    if (cfo_other == nullptr ||
        cfo_other->sketch_.counts.size() != sketch_.counts.size()) {
      return Status::InvalidArgument("CFO: accumulator shape mismatch");
    }
    sketch_.Merge(cfo_other->sketch_);
    return Status::OK();
  }

  uint64_t num_reports() const override { return sketch_.n; }
  const FoSketch& sketch() const { return sketch_; }

 private:
  const BatchedFo* fo_;
  FoSketch sketch_;
};

class CfoBinningProtocol final : public Protocol {
 public:
  CfoBinningProtocol(std::unique_ptr<BatchedFo> fo, size_t d, size_t bins,
                     std::string name)
      : fo_(std::move(fo)), d_(d), bins_(bins), name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return true; }
  size_t granularity() const override { return d_; }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<CfoAccumulator>(fo_.get());
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    std::vector<uint32_t> binned;
    binned.reserve(values.size());
    for (double v : values) {
      binned.push_back(static_cast<uint32_t>(hist::BucketOf(v, bins_)));
    }
    auto chunk = std::make_unique<CfoChunk>();
    chunk->domain = fo_->domain();
    fo_->PerturbBatch(binned, rng, &chunk->chunk);
    return std::unique_ptr<ReportChunk>(std::move(chunk));
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* cfo_acc = dynamic_cast<const CfoAccumulator*>(&acc);
    if (cfo_acc == nullptr) {
      return Status::InvalidArgument("CFO: accumulator from another protocol");
    }
    if (cfo_acc->num_reports() == 0) {
      return Status::InvalidArgument("CFO: no reports absorbed");
    }
    const std::vector<double> noisy = fo_->Estimate(cfo_acc->sketch());
    const std::vector<double> clean = NormSub(noisy, 1.0);
    // Expand to d buckets assuming a uniform distribution within each bin.
    const size_t chunk_size = d_ / bins_;
    MethodOutput out;
    out.distribution.resize(d_);
    for (size_t c = 0; c < bins_; ++c) {
      const double share = clean[c] / static_cast<double>(chunk_size);
      for (size_t j = 0; j < chunk_size; ++j) {
        out.distribution[c * chunk_size + j] = share;
      }
    }
    out.range_query = DistributionRangeQuery(out.distribution);
    return out;
  }

 private:
  std::unique_ptr<BatchedFo> fo_;
  size_t d_;
  size_t bins_;
  std::string name_;
};

std::string OracleTag(FoKind oracle) {
  switch (oracle) {
    case FoKind::kAdaptive:
      return "bin";
    case FoKind::kGrr:
      return "grr";
    case FoKind::kOlh:
      return "olh";
    case FoKind::kOue:
      return "oue";
  }
  return "bin";
}

}  // namespace

Result<ProtocolPtr> MakeCfoBinningProtocol(double epsilon, size_t d,
                                           size_t bins, FoKind oracle) {
  if (bins == 0 || d % bins != 0) {
    return Status::InvalidArgument(
        "CFO binning: bins must divide the reconstruction granularity");
  }
  Result<std::unique_ptr<BatchedFo>> fo = MakeBatchedFo(oracle, epsilon, bins);
  if (!fo.ok()) return fo.status();
  std::string name = "CFO-" + OracleTag(oracle) + "-" + std::to_string(bins);
  return ProtocolPtr(new CfoBinningProtocol(std::move(fo).value(), d, bins,
                                            std::move(name)));
}

}  // namespace numdist
