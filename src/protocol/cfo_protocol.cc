#include "protocol/cfo_protocol.h"

#include <utility>

#include "common/histogram.h"
#include "postprocess/norm_sub.h"

namespace numdist {

namespace {

class CfoChunk final : public ReportChunk {
 public:
  size_t num_reports() const override { return chunk.n; }
  FoChunk chunk;
  size_t domain = 0;  // oracle domain the chunk was encoded for
};

class CfoAccumulator final : public Accumulator {
 public:
  explicit CfoAccumulator(const BatchedFo* fo)
      : fo_(fo), sketch_(fo->MakeSketch()) {}

  Status Absorb(const ReportChunk& chunk) override {
    const auto* cfo_chunk = dynamic_cast<const CfoChunk*>(&chunk);
    if (cfo_chunk == nullptr) {
      return Status::InvalidArgument("CFO: chunk from a different protocol");
    }
    if (cfo_chunk->domain != fo_->domain()) {
      return Status::InvalidArgument("CFO: chunk domain mismatch");
    }
    return fo_->Absorb(cfo_chunk->chunk, &sketch_);
  }

  Status Merge(const Accumulator& other) override {
    const auto* cfo_other = dynamic_cast<const CfoAccumulator*>(&other);
    if (cfo_other == nullptr ||
        cfo_other->sketch_.counts.size() != sketch_.counts.size()) {
      return Status::InvalidArgument("CFO: accumulator shape mismatch");
    }
    sketch_.Merge(cfo_other->sketch_);
    return Status::OK();
  }

  uint64_t num_reports() const override { return sketch_.n; }
  const FoSketch& sketch() const { return sketch_; }

  AccumulatorState ExportState() const override {
    AccumulatorState state;
    state.num_reports = sketch_.n;
    state.tables.push_back(AccumulatorTable{sketch_.counts, sketch_.n});
    return state;
  }

  Status ImportState(const AccumulatorState& state) override {
    if (state.tables.size() != 1 ||
        state.tables[0].counts.size() != sketch_.counts.size()) {
      return Status::InvalidArgument("CFO: accumulator state shape mismatch");
    }
    if (state.tables[0].n != state.num_reports) {
      return Status::InvalidArgument(
          "CFO: inconsistent report counts in accumulator state");
    }
    // Integrity beyond shape: every CFO sketch cell is a per-user 0/1
    // contribution summed over users (GRR category counts, OLH support
    // counts, OUE ones counts), so each count must sit in [0, n]. Rejects
    // poisoned-but-well-shaped state the same way the SW and hierarchy
    // imports do.
    for (int64_t c : state.tables[0].counts) {
      if (c < 0 || static_cast<uint64_t>(c) > state.num_reports) {
        return Status::InvalidArgument(
            "CFO: sketch count outside [0, n] in accumulator state");
      }
    }
    sketch_.counts = state.tables[0].counts;
    sketch_.n = state.num_reports;
    return Status::OK();
  }

 private:
  const BatchedFo* fo_;
  FoSketch sketch_;
};

class CfoBinningProtocol final : public Protocol {
 public:
  CfoBinningProtocol(std::unique_ptr<BatchedFo> fo, size_t d, size_t bins,
                     std::string name)
      : fo_(std::move(fo)), d_(d), bins_(bins), name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return true; }
  size_t granularity() const override { return d_; }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<CfoAccumulator>(fo_.get());
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    std::vector<uint32_t> binned;
    binned.reserve(values.size());
    for (double v : values) {
      binned.push_back(static_cast<uint32_t>(hist::BucketOf(v, bins_)));
    }
    auto chunk = std::make_unique<CfoChunk>();
    chunk->domain = fo_->domain();
    fo_->PerturbBatch(binned, rng, &chunk->chunk);
    return std::unique_ptr<ReportChunk>(std::move(chunk));
  }

  // Wire payload (docs/WIRE_FORMAT.md): u32 oracle domain, u64 user count,
  // u64 report-pair count, then (u64 seed, u32 value) per report, then a
  // u64 OUE bit-vector length and the raw bit bytes. GRR/OLH/adaptive
  // chunks carry report pairs and no bits; OUE chunks carry bits only.
  Status EncodeChunkPayload(const ReportChunk& chunk,
                            ByteWriter* out) const override {
    const auto* cfo_chunk = dynamic_cast<const CfoChunk*>(&chunk);
    if (cfo_chunk == nullptr) {
      return Status::InvalidArgument("CFO: chunk from a different protocol");
    }
    out->PutU32(static_cast<uint32_t>(cfo_chunk->domain));
    out->PutU64(cfo_chunk->chunk.n);
    out->PutU64(cfo_chunk->chunk.reports.size());
    for (const FoReport& r : cfo_chunk->chunk.reports) {
      out->PutU64(r.seed);
      out->PutU32(r.value);
    }
    out->PutU64(cfo_chunk->chunk.bits.size());
    if (!cfo_chunk->chunk.bits.empty()) {
      out->PutBytes(cfo_chunk->chunk.bits.data(), cfo_chunk->chunk.bits.size());
    }
    return Status::OK();
  }

  Result<std::unique_ptr<ReportChunk>> DecodeChunkPayload(
      ByteReader* in) const override {
    NUMDIST_ASSIGN_OR_RETURN(const uint32_t domain, in->U32());
    if (domain != fo_->domain()) {
      return Status::InvalidArgument(
          "CFO: chunk domain does not match this protocol");
    }
    NUMDIST_ASSIGN_OR_RETURN(const uint64_t n, in->U64());
    NUMDIST_ASSIGN_OR_RETURN(const uint64_t num_pairs, in->U64());
    constexpr size_t kPairBytes = sizeof(uint64_t) + sizeof(uint32_t);
    if (num_pairs > in->remaining() / kPairBytes) {
      return Status::OutOfRange(
          "CFO: chunk report count exceeds the remaining payload");
    }
    auto chunk = std::make_unique<CfoChunk>();
    chunk->domain = domain;
    chunk->chunk.n = n;
    chunk->chunk.reports.reserve(num_pairs);
    for (uint64_t i = 0; i < num_pairs; ++i) {
      FoReport report;
      NUMDIST_ASSIGN_OR_RETURN(report.seed, in->U64());
      NUMDIST_ASSIGN_OR_RETURN(report.value, in->U32());
      chunk->chunk.reports.push_back(report);
    }
    NUMDIST_ASSIGN_OR_RETURN(const uint64_t bits_len, in->U64());
    if (bits_len > in->remaining()) {
      return Status::OutOfRange(
          "CFO: chunk bit-vector length exceeds the remaining payload");
    }
    chunk->chunk.bits.resize(bits_len);
    if (bits_len > 0) {
      NUMDIST_RETURN_NOT_OK(in->Bytes(chunk->chunk.bits.data(), bits_len));
    }
    // Cross-field consistency: a chunk is either report pairs (GRR/OLH,
    // one per user) or flattened OUE bit vectors (domain bits per user).
    if (!chunk->chunk.reports.empty() && !chunk->chunk.bits.empty()) {
      return Status::InvalidArgument(
          "CFO: chunk carries both report pairs and OUE bits");
    }
    if (!chunk->chunk.reports.empty() && chunk->chunk.reports.size() != n) {
      return Status::InvalidArgument(
          "CFO: chunk report count does not match its user count");
    }
    if (!chunk->chunk.bits.empty() &&
        (chunk->chunk.bits.size() % domain != 0 ||
         chunk->chunk.bits.size() / domain != n)) {
      return Status::InvalidArgument(
          "CFO: chunk bit-vector size does not match its user count");
    }
    if (chunk->chunk.reports.empty() && chunk->chunk.bits.empty() && n != 0) {
      return Status::InvalidArgument("CFO: non-empty chunk with no reports");
    }
    return std::unique_ptr<ReportChunk>(std::move(chunk));
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* cfo_acc = dynamic_cast<const CfoAccumulator*>(&acc);
    if (cfo_acc == nullptr) {
      return Status::InvalidArgument("CFO: accumulator from another protocol");
    }
    if (cfo_acc->num_reports() == 0) {
      return Status::InvalidArgument("CFO: no reports absorbed");
    }
    const std::vector<double> noisy = fo_->Estimate(cfo_acc->sketch());
    const std::vector<double> clean = NormSub(noisy, 1.0);
    // Expand to d buckets assuming a uniform distribution within each bin.
    const size_t chunk_size = d_ / bins_;
    MethodOutput out;
    out.distribution.resize(d_);
    for (size_t c = 0; c < bins_; ++c) {
      const double share = clean[c] / static_cast<double>(chunk_size);
      for (size_t j = 0; j < chunk_size; ++j) {
        out.distribution[c * chunk_size + j] = share;
      }
    }
    out.range_query = DistributionRangeQuery(out.distribution);
    return out;
  }

 private:
  std::unique_ptr<BatchedFo> fo_;
  size_t d_;
  size_t bins_;
  std::string name_;
};

std::string OracleTag(FoKind oracle) {
  switch (oracle) {
    case FoKind::kAdaptive:
      return "bin";
    case FoKind::kGrr:
      return "grr";
    case FoKind::kOlh:
      return "olh";
    case FoKind::kOue:
      return "oue";
  }
  return "bin";
}

}  // namespace

Result<ProtocolPtr> MakeCfoBinningProtocol(double epsilon, size_t d,
                                           size_t bins, FoKind oracle) {
  if (bins == 0 || d % bins != 0) {
    return Status::InvalidArgument(
        "CFO binning: bins must divide the reconstruction granularity");
  }
  Result<std::unique_ptr<BatchedFo>> fo = MakeBatchedFo(oracle, epsilon, bins);
  if (!fo.ok()) return fo.status();
  std::string name = "CFO-" + OracleTag(oracle) + "-" + std::to_string(bins);
  return ProtocolPtr(new CfoBinningProtocol(std::move(fo).value(), d, bins,
                                            std::move(name)));
}

}  // namespace numdist
