// Hierarchy methods behind the batched Protocol contract (paper §4.2-4.3):
// HH (per-level adaptive FO + constrained inference, range queries only),
// HH-ADMM (same collection, ADMM post-processing into a full distribution),
// and HaarHRR (Haar coefficients through HRR, range queries only). The
// accumulator is one mergeable FoSketch per tree level.
#pragma once

#include <cstddef>

#include "hierarchy/hh.h"
#include "protocol/protocol.h"

namespace numdist {

/// How HH node estimates are post-processed at reconstruction.
enum class HhPost {
  kConstrained,  ///< Constrained inference; range queries only ("HH").
  kAdmm,         ///< ADMM projection to a distribution ("HH-ADMM").
};

/// Builds the HH protocol. Requires epsilon > 0, beta >= 2, d = beta^h.
Result<ProtocolPtr> MakeHhBatchedProtocol(
    double epsilon, size_t d, size_t beta = 4, HhPost post = HhPost::kConstrained,
    HhBudgetStrategy strategy = HhBudgetStrategy::kDividePopulation);

/// Builds the HaarHRR protocol. Requires epsilon > 0 and d a power of two.
Result<ProtocolPtr> MakeHaarHrrBatchedProtocol(double epsilon, size_t d);

}  // namespace numdist
