// CFO-with-binning behind the batched Protocol contract (paper §4.1):
// values are bucketized into `bins` chunks, perturbed through a categorical
// frequency oracle, the server folds reports into the oracle's mergeable
// sketch, and reconstruction applies Norm-Sub then expands each bin
// uniformly to the reconstruction granularity d.
#pragma once

#include <cstddef>

#include "fo/batched.h"
#include "protocol/protocol.h"

namespace numdist {

/// Builds the CFO binning protocol. Requires epsilon > 0, bins >= 2 and
/// bins dividing d. `oracle` selects the frequency oracle family; the
/// variance-adaptive default matches the paper's CFO and is named
/// "CFO-bin-N"; forced oracles are named "CFO-grr-N" / "CFO-olh-N" /
/// "CFO-oue-N".
Result<ProtocolPtr> MakeCfoBinningProtocol(double epsilon, size_t d,
                                           size_t bins,
                                           FoKind oracle = FoKind::kAdaptive);

}  // namespace numdist
