#include "protocol/sharded.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace numdist {

uint64_t ShardSeed(uint64_t seed, size_t shard) {
  // Same splitmix-based stream separation the trial loop uses: one mix per
  // shard index keeps streams independent of neighboring shards.
  return SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
}

Result<std::unique_ptr<Accumulator>> AccumulateSharded(
    const Protocol& protocol, std::span<const double> values, uint64_t seed,
    const ShardOptions& opts) {
  if (values.empty()) {
    return Status::InvalidArgument(protocol.name() + ": no input values");
  }
  const size_t shard_size = std::max<size_t>(1, opts.shard_size);
  const size_t num_shards = (values.size() + shard_size - 1) / shard_size;
  size_t threads = opts.threads == 0
                       ? std::max<size_t>(1, std::thread::hardware_concurrency())
                       : opts.threads;
  threads = std::min(threads, num_shards);

  std::vector<std::unique_ptr<Accumulator>> partials(threads);
  std::vector<Status> failures(threads, Status::OK());

  const auto worker = [&](size_t worker_id) {
    std::unique_ptr<Accumulator> local = protocol.MakeAccumulator();
    for (size_t i = worker_id; i < num_shards; i += threads) {
      const size_t begin = i * shard_size;
      const size_t len = std::min(shard_size, values.size() - begin);
      Rng rng(ShardSeed(seed, i));
      Result<std::unique_ptr<ReportChunk>> chunk =
          protocol.EncodePerturbBatch(values.subspan(begin, len), rng);
      if (!chunk.ok()) {
        failures[worker_id] = chunk.status();
        return;
      }
      const Status st = local->Absorb(*chunk.value());
      if (!st.ok()) {
        failures[worker_id] = st;
        return;
      }
    }
    partials[worker_id] = std::move(local);
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (std::thread& th : pool) th.join();
  }

  for (const Status& st : failures) {
    if (!st.ok()) return st;
  }

  // One merge pass at the end; merge order is irrelevant for the built-in
  // integer accumulators, but keep it fixed (worker order) anyway.
  std::unique_ptr<Accumulator> merged = std::move(partials[0]);
  for (size_t w = 1; w < partials.size(); ++w) {
    NUMDIST_RETURN_NOT_OK(merged->Merge(*partials[w]));
  }
  return merged;
}

Result<MethodOutput> RunProtocolSharded(const Protocol& protocol,
                                        std::span<const double> values,
                                        uint64_t seed,
                                        const ShardOptions& opts) {
  Result<std::unique_ptr<Accumulator>> acc =
      AccumulateSharded(protocol, values, seed, opts);
  if (!acc.ok()) return acc.status();
  return protocol.Reconstruct(*acc.value());
}

}  // namespace numdist
