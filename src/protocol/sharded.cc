#include "protocol/sharded.h"

#include <algorithm>
#include <vector>

#include "common/executor.h"

namespace numdist {

uint64_t ShardSeed(uint64_t seed, size_t shard) {
  // Same splitmix-based stream separation the trial loop uses: one mix per
  // shard index keeps streams independent of neighboring shards.
  return SplitMix64(seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
}

Result<std::unique_ptr<Accumulator>> AccumulateSharded(
    const Protocol& protocol, std::span<const double> values, uint64_t seed,
    const ShardOptions& opts) {
  if (values.empty()) {
    return Status::InvalidArgument(protocol.name() + ": no input values");
  }
  const size_t shard_size = std::max<size_t>(1, opts.shard_size);
  const size_t num_shards = (values.size() + shard_size - 1) / shard_size;
  const size_t threads =
      std::min(ResolveThreadCount(opts.threads), num_shards);

  // Shard i is a pure function of (values, seed, i) — its RNG stream is
  // fixed by ShardSeed(seed, i) — so WHICH participant encodes it is
  // irrelevant. Participants fold their shards into per-slot accumulators;
  // because every built-in accumulator is exact integer state with
  // commutative, associative merges, the slot-order merge below yields the
  // same aggregate no matter how the executor distributed or stole the
  // shards (the any-thread-count bit-identity contract in the header).
  Executor& executor = Executor::Shared();
  const size_t max_slots = executor.MaxParticipants(num_shards, threads);
  std::vector<std::unique_ptr<Accumulator>> partials(max_slots);
  std::vector<Status> failures(max_slots, Status::OK());

  executor.ParallelFor(num_shards, threads, [&](size_t shard, size_t slot) {
    if (!failures[slot].ok()) return;
    if (partials[slot] == nullptr) {
      partials[slot] = protocol.MakeAccumulator();
    }
    const size_t begin = shard * shard_size;
    const size_t len = std::min(shard_size, values.size() - begin);
    Rng rng(ShardSeed(seed, shard));
    Result<std::unique_ptr<ReportChunk>> chunk =
        protocol.EncodePerturbBatch(values.subspan(begin, len), rng);
    if (!chunk.ok()) {
      failures[slot] = chunk.status();
      return;
    }
    const Status st = partials[slot]->Absorb(*chunk.value());
    if (!st.ok()) failures[slot] = st;
  });

  for (const Status& st : failures) {
    if (!st.ok()) return st;
  }

  // One merge pass at the end, in slot order. Slots that never ran a task
  // (all their work was stolen) hold no accumulator and are skipped.
  std::unique_ptr<Accumulator> merged;
  for (std::unique_ptr<Accumulator>& partial : partials) {
    if (partial == nullptr) continue;
    if (merged == nullptr) {
      merged = std::move(partial);
      continue;
    }
    NUMDIST_RETURN_NOT_OK(merged->Merge(*partial));
  }
  return merged;
}

Result<MethodOutput> RunProtocolSharded(const Protocol& protocol,
                                        std::span<const double> values,
                                        uint64_t seed,
                                        const ShardOptions& opts) {
  Result<std::unique_ptr<Accumulator>> acc =
      AccumulateSharded(protocol, values, seed, opts);
  if (!acc.ok()) return acc.status();
  return protocol.Reconstruct(*acc.value());
}

}  // namespace numdist
