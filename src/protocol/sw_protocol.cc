#include "protocol/sw_protocol.h"

#include <utility>

namespace numdist {

namespace {

// Wire format: the raw per-user SW reports (a real in [-b, 1+b] for the
// continuous pipeline, an output bucket index for the discrete one).
class SwChunk final : public ReportChunk {
 public:
  size_t num_reports() const override { return reports.size(); }
  std::vector<double> reports;
  size_t output_buckets = 0;  // aggregation shape the chunk was encoded for
  bool discrete = false;      // bucketize-before-randomize pipeline
};

class SwAccumulator final : public Accumulator {
 public:
  SwAccumulator(const SwEstimator* estimator, size_t buckets)
      : estimator_(estimator), counts_(buckets, 0) {}

  Status Absorb(const ReportChunk& chunk) override {
    const auto* sw_chunk = dynamic_cast<const SwChunk*>(&chunk);
    if (sw_chunk == nullptr) {
      return Status::InvalidArgument("SW: chunk from a different protocol");
    }
    if (sw_chunk->output_buckets != counts_.size()) {
      return Status::InvalidArgument("SW: chunk shape mismatch");
    }
    if (sw_chunk->discrete) {
      // Discrete reports index the count vector directly; reports come
      // from untrusted clients, so range-check before aggregation
      // (the continuous pipeline clamps instead).
      for (double r : sw_chunk->reports) {
        if (!(r >= 0.0) || r >= static_cast<double>(counts_.size())) {
          return Status::InvalidArgument("SW: report out of output domain");
        }
      }
    }
    const std::vector<uint64_t> batch =
        estimator_->Aggregate(sw_chunk->reports);
    for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += batch[j];
    n_ += sw_chunk->reports.size();
    return Status::OK();
  }

  Status Merge(const Accumulator& other) override {
    const auto* sw_other = dynamic_cast<const SwAccumulator*>(&other);
    if (sw_other == nullptr || sw_other->counts_.size() != counts_.size()) {
      return Status::InvalidArgument("SW: accumulator shape mismatch");
    }
    for (size_t j = 0; j < counts_.size(); ++j) {
      counts_[j] += sw_other->counts_[j];
    }
    n_ += sw_other->n_;
    return Status::OK();
  }

  uint64_t num_reports() const override { return n_; }
  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  const SwEstimator* estimator_;
  std::vector<uint64_t> counts_;
  uint64_t n_ = 0;
};

class SwProtocol final : public Protocol {
 public:
  explicit SwProtocol(SwEstimator estimator)
      : estimator_(std::move(estimator)),
        name_(estimator_.options().post == SwEstimatorOptions::Post::kEms
                  ? "SW-EMS"
                  : "SW-EM") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return true; }
  size_t granularity() const override { return estimator_.options().d; }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<SwAccumulator>(&estimator_,
                                           estimator_.output_buckets());
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    auto chunk = std::make_unique<SwChunk>();
    chunk->output_buckets = estimator_.output_buckets();
    chunk->discrete =
        estimator_.options().pipeline ==
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
    chunk->reports.reserve(values.size());
    for (double v : values) {
      chunk->reports.push_back(estimator_.PerturbOne(v, rng));
    }
    return std::unique_ptr<ReportChunk>(std::move(chunk));
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* sw_acc = dynamic_cast<const SwAccumulator*>(&acc);
    if (sw_acc == nullptr) {
      return Status::InvalidArgument("SW: accumulator from another protocol");
    }
    if (sw_acc->num_reports() == 0) {
      return Status::InvalidArgument("SW: no reports absorbed");
    }
    Result<EmResult> em = estimator_.Reconstruct(sw_acc->counts());
    if (!em.ok()) return em.status();
    MethodOutput out;
    out.distribution = std::move(em).value().estimate;
    out.range_query = DistributionRangeQuery(out.distribution);
    return out;
  }

 private:
  SwEstimator estimator_;
  std::string name_;
};

}  // namespace

Result<ProtocolPtr> MakeSwProtocol(const SwEstimatorOptions& options) {
  Result<SwEstimator> estimator = SwEstimator::Make(options);
  if (!estimator.ok()) return estimator.status();
  return ProtocolPtr(new SwProtocol(std::move(estimator).value()));
}

}  // namespace numdist
