#include "protocol/sw_protocol.h"

#include <cmath>
#include <utility>

namespace numdist {

namespace {

// Wire format: the raw per-user SW reports (a real in [-b, 1+b] for the
// continuous pipeline, an output bucket index for the discrete one).
class SwChunk final : public ReportChunk {
 public:
  size_t num_reports() const override { return reports.size(); }
  std::vector<double> reports;
  size_t output_buckets = 0;  // aggregation shape the chunk was encoded for
  bool discrete = false;      // bucketize-before-randomize pipeline
};

class SwAccumulator final : public Accumulator {
 public:
  SwAccumulator(const SwEstimator* estimator, size_t buckets)
      : estimator_(estimator), counts_(buckets, 0) {}

  Status Absorb(const ReportChunk& chunk) override {
    const auto* sw_chunk = dynamic_cast<const SwChunk*>(&chunk);
    if (sw_chunk == nullptr) {
      return Status::InvalidArgument("SW: chunk from a different protocol");
    }
    if (sw_chunk->output_buckets != counts_.size()) {
      return Status::InvalidArgument("SW: chunk shape mismatch");
    }
    if (sw_chunk->discrete) {
      // Discrete reports index the count vector directly; reports come
      // from untrusted clients, so range-check before aggregation
      // (the continuous pipeline clamps instead).
      for (double r : sw_chunk->reports) {
        if (!(r >= 0.0) || r >= static_cast<double>(counts_.size())) {
          return Status::InvalidArgument("SW: report out of output domain");
        }
      }
    }
    const std::vector<uint64_t> batch =
        estimator_->Aggregate(sw_chunk->reports);
    for (size_t j = 0; j < counts_.size(); ++j) counts_[j] += batch[j];
    n_ += sw_chunk->reports.size();
    return Status::OK();
  }

  Status Merge(const Accumulator& other) override {
    const auto* sw_other = dynamic_cast<const SwAccumulator*>(&other);
    if (sw_other == nullptr || sw_other->counts_.size() != counts_.size()) {
      return Status::InvalidArgument("SW: accumulator shape mismatch");
    }
    for (size_t j = 0; j < counts_.size(); ++j) {
      counts_[j] += sw_other->counts_[j];
    }
    n_ += sw_other->n_;
    return Status::OK();
  }

  uint64_t num_reports() const override { return n_; }
  const std::vector<uint64_t>& counts() const { return counts_; }

  AccumulatorState ExportState() const override {
    AccumulatorState state;
    state.num_reports = n_;
    AccumulatorTable table;
    table.n = n_;
    table.counts.assign(counts_.begin(), counts_.end());
    state.tables.push_back(std::move(table));
    return state;
  }

  Status ImportState(const AccumulatorState& state) override {
    if (state.tables.size() != 1 ||
        state.tables[0].counts.size() != counts_.size()) {
      return Status::InvalidArgument("SW: accumulator state shape mismatch");
    }
    if (state.tables[0].n != state.num_reports) {
      return Status::InvalidArgument(
          "SW: inconsistent report counts in accumulator state");
    }
    // Every SW report lands in exactly one output bucket, so the counts
    // must be non-negative and sum to the report count — cheap integrity
    // checks that reject corrupted-but-well-shaped state. The sum is
    // overflow-checked: counts crafted to wrap mod 2^64 back onto the
    // report count must not pass.
    uint64_t total = 0;
    for (int64_t c : state.tables[0].counts) {
      if (c < 0) {
        return Status::InvalidArgument(
            "SW: negative bucket count in accumulator state");
      }
      const uint64_t u = static_cast<uint64_t>(c);
      if (u > UINT64_MAX - total) {
        return Status::InvalidArgument(
            "SW: bucket counts overflow in accumulator state");
      }
      total += u;
    }
    if (total != state.num_reports) {
      return Status::InvalidArgument(
          "SW: bucket counts do not sum to the report count");
    }
    for (size_t j = 0; j < counts_.size(); ++j) {
      counts_[j] = static_cast<uint64_t>(state.tables[0].counts[j]);
    }
    n_ = state.num_reports;
    return Status::OK();
  }

 private:
  const SwEstimator* estimator_;
  std::vector<uint64_t> counts_;
  uint64_t n_ = 0;
};

class SwProtocol final : public Protocol {
 public:
  explicit SwProtocol(SwEstimator estimator)
      : estimator_(std::move(estimator)),
        name_(estimator_.options().post == SwEstimatorOptions::Post::kEms
                  ? "SW-EMS"
                  : "SW-EM") {}

  const std::string& name() const override { return name_; }
  bool yields_distribution() const override { return true; }
  size_t granularity() const override { return estimator_.options().d; }

  std::unique_ptr<Accumulator> MakeAccumulator() const override {
    return std::make_unique<SwAccumulator>(&estimator_,
                                           estimator_.output_buckets());
  }

  Result<std::unique_ptr<ReportChunk>> EncodePerturbBatch(
      std::span<const double> values, Rng& rng) const override {
    auto chunk = std::make_unique<SwChunk>();
    chunk->output_buckets = estimator_.output_buckets();
    chunk->discrete =
        estimator_.options().pipeline ==
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
    estimator_.PerturbBatch(values, rng, &chunk->reports);
    return std::unique_ptr<ReportChunk>(std::move(chunk));
  }

  // Wire payload (docs/WIRE_FORMAT.md): u8 pipeline flag, u32 output
  // buckets, u64 report count, then one f64 bit pattern per report.
  Status EncodeChunkPayload(const ReportChunk& chunk,
                            ByteWriter* out) const override {
    const auto* sw_chunk = dynamic_cast<const SwChunk*>(&chunk);
    if (sw_chunk == nullptr) {
      return Status::InvalidArgument("SW: chunk from a different protocol");
    }
    out->PutU8(sw_chunk->discrete ? 1 : 0);
    out->PutU32(static_cast<uint32_t>(sw_chunk->output_buckets));
    out->PutU64(sw_chunk->reports.size());
    for (double r : sw_chunk->reports) out->PutF64(r);
    return Status::OK();
  }

  Result<std::unique_ptr<ReportChunk>> DecodeChunkPayload(
      ByteReader* in) const override {
    NUMDIST_ASSIGN_OR_RETURN(const uint8_t discrete, in->U8());
    if (discrete > 1) {
      return Status::InvalidArgument("SW: bad pipeline flag in chunk payload");
    }
    const bool expect_discrete =
        estimator_.options().pipeline ==
        SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
    if ((discrete == 1) != expect_discrete) {
      return Status::InvalidArgument(
          "SW: chunk pipeline does not match this protocol");
    }
    NUMDIST_ASSIGN_OR_RETURN(const uint32_t buckets, in->U32());
    if (buckets != estimator_.output_buckets()) {
      return Status::InvalidArgument(
          "SW: chunk output-bucket count does not match this protocol");
    }
    NUMDIST_ASSIGN_OR_RETURN(const uint64_t count, in->U64());
    if (count > in->remaining() / sizeof(uint64_t)) {
      return Status::OutOfRange(
          "SW: chunk report count exceeds the remaining payload");
    }
    auto chunk = std::make_unique<SwChunk>();
    chunk->discrete = discrete == 1;
    chunk->output_buckets = buckets;
    chunk->reports.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      NUMDIST_ASSIGN_OR_RETURN(const double r, in->F64());
      // Wire reports are untrusted. Finite out-of-range values are safe
      // downstream (the continuous path clamps, the discrete path
      // range-checks in Absorb), but a NaN would sail through the clamp —
      // NaN comparisons are all false — into a float->index cast that is
      // UB. Reject non-finite payloads here, at the trust boundary.
      if (!std::isfinite(r)) {
        return Status::InvalidArgument(
            "SW: non-finite report in chunk payload");
      }
      chunk->reports.push_back(r);
    }
    return std::unique_ptr<ReportChunk>(std::move(chunk));
  }

  Result<MethodOutput> Reconstruct(const Accumulator& acc) const override {
    const auto* sw_acc = dynamic_cast<const SwAccumulator*>(&acc);
    if (sw_acc == nullptr) {
      return Status::InvalidArgument("SW: accumulator from another protocol");
    }
    if (sw_acc->num_reports() == 0) {
      return Status::InvalidArgument("SW: no reports absorbed");
    }
    Result<EmResult> em = estimator_.Reconstruct(sw_acc->counts());
    if (!em.ok()) return em.status();
    MethodOutput out;
    out.distribution = std::move(em).value().estimate;
    out.range_query = DistributionRangeQuery(out.distribution);
    return out;
  }

 private:
  SwEstimator estimator_;
  std::string name_;
};

}  // namespace

Result<ProtocolPtr> MakeSwProtocol(const SwEstimatorOptions& options) {
  Result<SwEstimator> estimator = SwEstimator::Make(options);
  if (!estimator.ok()) return estimator.status();
  return ProtocolPtr(new SwProtocol(std::move(estimator).value()));
}

}  // namespace numdist
