#include "wire/wire.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "protocol/cfo_protocol.h"
#include "protocol/hierarchy_protocol.h"
#include "protocol/sw_protocol.h"

namespace numdist::wire {

namespace {

// Preamble layout (8 bytes): u32 magic, u16 version, u8 frame type,
// u8 flags. The defined flag bits are kFlagTenantContext and
// kFlagSequence (report and sketch frames only); every other bit must be
// zero — the forward-compatibility escape hatch.
void WritePreamble(FrameType type, uint8_t flags, ByteWriter* out) {
  out->PutU32(kMagic);
  out->PutU16(kVersion);
  out->PutU8(static_cast<uint8_t>(type));
  out->PutU8(flags);
}

struct Preamble {
  FrameType type = FrameType::kReports;
  bool has_tenant = false;
  bool has_seq = false;
};

Result<Preamble> ReadPreamble(ByteReader* in) {
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t magic, in->U32());
  if (magic != kMagic) {
    return Status::InvalidArgument("wire: bad magic (not a numdist frame)");
  }
  NUMDIST_ASSIGN_OR_RETURN(const uint16_t version, in->U16());
  if (version != kVersion) {
    return Status::FailedPrecondition(
        "wire: unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kVersion) + ")");
  }
  NUMDIST_ASSIGN_OR_RETURN(const uint8_t type, in->U8());
  if (type < static_cast<uint8_t>(FrameType::kReports) ||
      type > static_cast<uint8_t>(FrameType::kAck)) {
    return Status::InvalidArgument("wire: unknown frame type " +
                                   std::to_string(type));
  }
  NUMDIST_ASSIGN_OR_RETURN(const uint8_t flags, in->U8());
  if ((flags & ~(kFlagTenantContext | kFlagSequence)) != 0) {
    return Status::InvalidArgument(
        "wire: unknown flags " + std::to_string(flags) +
        " (version 1 defines only the tenant-context and sequence bits)");
  }
  Preamble preamble;
  preamble.type = static_cast<FrameType>(type);
  preamble.has_tenant = (flags & kFlagTenantContext) != 0;
  preamble.has_seq = (flags & kFlagSequence) != 0;
  if ((preamble.has_tenant || preamble.has_seq) &&
      (preamble.type == FrameType::kSnapshot ||
       preamble.type == FrameType::kAck)) {
    return Status::InvalidArgument(
        "wire: only report and sketch frames may carry tenant/sequence "
        "context flags");
  }
  return preamble;
}

// The optional tenant context block: a u32 tenant id immediately after
// the method block, present iff the preamble carries kFlagTenantContext.
Result<uint32_t> ReadTenantBlock(const Preamble& preamble, ByteReader* in) {
  if (!preamble.has_tenant) return kDefaultTenant;
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t tenant, in->U32());
  return tenant;
}

// The optional sequence context block: u64 epoch + u64 seq after the
// tenant block (or method block), present iff kFlagSequence is set. A
// sequence number of 0 is reserved (it would collide with "nothing
// claimed yet" in the collector's dedup window) and rejected here.
Result<FrameSeq> ReadSeqBlock(const Preamble& preamble, ByteReader* in) {
  FrameSeq seq;
  if (!preamble.has_seq) return seq;
  NUMDIST_ASSIGN_OR_RETURN(seq.epoch, in->U64());
  NUMDIST_ASSIGN_OR_RETURN(seq.seq, in->U64());
  if (seq.seq == 0) {
    return Status::InvalidArgument(
        "wire: sequence numbers start at 1 (seq 0 is reserved)");
  }
  return seq;
}

// Method context block (17 bytes): u8 method id, u32 family parameter,
// u64 epsilon bits, u32 granularity d.
void WriteMethodBlock(const MethodSpec& spec, ByteWriter* out) {
  out->PutU8(static_cast<uint8_t>(spec.method));
  out->PutU32(spec.param);
  out->PutU64(MethodSpec::EpsilonBits(spec.epsilon));
  out->PutU32(spec.d);
}

Result<MethodSpec> ReadMethodBlock(ByteReader* in) {
  NUMDIST_ASSIGN_OR_RETURN(const uint8_t method, in->U8());
  if (method < static_cast<uint8_t>(MethodId::kSwEms) ||
      method > static_cast<uint8_t>(MethodId::kHaarHrr)) {
    return Status::InvalidArgument("wire: unknown method id " +
                                   std::to_string(method));
  }
  MethodSpec spec;
  spec.method = static_cast<MethodId>(method);
  NUMDIST_ASSIGN_OR_RETURN(spec.param, in->U32());
  NUMDIST_ASSIGN_OR_RETURN(const uint64_t epsilon_bits, in->U64());
  std::memcpy(&spec.epsilon, &epsilon_bits, sizeof(spec.epsilon));
  NUMDIST_ASSIGN_OR_RETURN(spec.d, in->U32());
  return spec;
}

// The per-field mismatch taxonomy: a frame must match the receiving
// endpoint's spec exactly before its payload is even looked at.
Status MatchSpec(const MethodSpec& frame, const MethodSpec& expected) {
  if (frame.method != expected.method || frame.param != expected.param) {
    return Status::InvalidArgument(
        "wire: frame method " + MethodSpecName(frame) +
        " does not match this endpoint (" + MethodSpecName(expected) + ")");
  }
  if (MethodSpec::EpsilonBits(frame.epsilon) !=
      MethodSpec::EpsilonBits(expected.epsilon)) {
    return Status::InvalidArgument(
        "wire: frame epsilon does not match this endpoint (bit-exact "
        "comparison; reports under different budgets must not be merged)");
  }
  if (frame.d != expected.d) {
    return Status::InvalidArgument(
        "wire: frame granularity d=" + std::to_string(frame.d) +
        " does not match this endpoint (d=" + std::to_string(expected.d) +
        ")");
  }
  return Status::OK();
}

Status ExpectFrameType(FrameType got, FrameType want) {
  if (got != want) {
    return Status::InvalidArgument(
        "wire: expected frame type " +
        std::to_string(static_cast<int>(want)) + ", got " +
        std::to_string(static_cast<int>(got)));
  }
  return Status::OK();
}

Status ExpectFullyConsumed(const ByteReader& in, const char* what) {
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        "wire: " + std::to_string(in.remaining()) +
        " trailing byte(s) after " + what + " payload");
  }
  return Status::OK();
}

// Sketch payload: u64 total reports, u32 table count, then per table a
// u64 per-table report count, u64 length, and that many i64 counts.
void WriteSketchPayload(const AccumulatorState& state, ByteWriter* out) {
  out->PutU64(state.num_reports);
  out->PutU32(static_cast<uint32_t>(state.tables.size()));
  for (const AccumulatorTable& table : state.tables) {
    out->PutU64(table.n);
    out->PutU64(table.counts.size());
    for (int64_t c : table.counts) out->PutI64(c);
  }
}

Result<AccumulatorState> ReadSketchPayload(ByteReader* in) {
  AccumulatorState state;
  NUMDIST_ASSIGN_OR_RETURN(state.num_reports, in->U64());
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t num_tables, in->U32());
  // Each table needs at least its two u64 length fields; bound before
  // reserving anything so a hostile count cannot drive allocation.
  if (num_tables > in->remaining() / (2 * sizeof(uint64_t))) {
    return Status::OutOfRange(
        "wire: sketch table count exceeds the remaining payload");
  }
  state.tables.reserve(num_tables);
  for (uint32_t t = 0; t < num_tables; ++t) {
    AccumulatorTable table;
    NUMDIST_ASSIGN_OR_RETURN(table.n, in->U64());
    NUMDIST_ASSIGN_OR_RETURN(const uint64_t len, in->U64());
    if (len > in->remaining() / sizeof(int64_t)) {
      return Status::OutOfRange(
          "wire: sketch table length exceeds the remaining payload");
    }
    table.counts.reserve(len);
    for (uint64_t i = 0; i < len; ++i) {
      NUMDIST_ASSIGN_OR_RETURN(const int64_t c, in->I64());
      table.counts.push_back(c);
    }
    state.tables.push_back(std::move(table));
  }
  return state;
}

Result<uint32_t> ParseTrailingCount(const std::string& name, size_t prefix) {
  if (name.size() <= prefix) {
    return Status::InvalidArgument("wire: method '" + name +
                                   "' is missing its bin count");
  }
  uint64_t value = 0;
  for (size_t i = prefix; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("wire: bad bin count in method '" +
                                     name + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    // Cap after accumulating, so e.g. 1000009 cannot sneak one digit past
    // the ceiling (also keeps the u64 from ever overflowing).
    if (value > 100000) {
      return Status::InvalidArgument("wire: bin count in method '" + name +
                                     "' exceeds 100000");
    }
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

uint64_t MethodSpec::EpsilonBits(double epsilon) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(epsilon));
  std::memcpy(&bits, &epsilon, sizeof(bits));
  return bits;
}

Result<MethodSpec> ParseMethodSpec(const std::string& method, double epsilon,
                                   uint32_t d) {
  MethodSpec spec;
  spec.epsilon = epsilon;
  spec.d = d;
  if (method == "sw-ems") {
    spec.method = MethodId::kSwEms;
  } else if (method == "sw-em") {
    spec.method = MethodId::kSwEm;
  } else if (method == "hh") {
    spec.method = MethodId::kHh;
    spec.param = 4;
  } else if (method == "hh-admm") {
    spec.method = MethodId::kHhAdmm;
    spec.param = 4;
  } else if (method == "haar-hrr") {
    spec.method = MethodId::kHaarHrr;
  } else if (method.rfind("cfo-grr-", 0) == 0) {
    spec.method = MethodId::kCfoGrr;
    NUMDIST_ASSIGN_OR_RETURN(spec.param, ParseTrailingCount(method, 8));
  } else if (method.rfind("cfo-olh-", 0) == 0) {
    spec.method = MethodId::kCfoOlh;
    NUMDIST_ASSIGN_OR_RETURN(spec.param, ParseTrailingCount(method, 8));
  } else if (method.rfind("cfo-oue-", 0) == 0) {
    spec.method = MethodId::kCfoOue;
    NUMDIST_ASSIGN_OR_RETURN(spec.param, ParseTrailingCount(method, 8));
  } else if (method.rfind("cfo-", 0) == 0) {
    spec.method = MethodId::kCfoAdaptive;
    NUMDIST_ASSIGN_OR_RETURN(spec.param, ParseTrailingCount(method, 4));
  } else {
    return Status::InvalidArgument(
        "wire: unknown method '" + method +
        "' (expected sw-ems, sw-em, cfo-<bins>, cfo-grr-<bins>, "
        "cfo-olh-<bins>, cfo-oue-<bins>, hh, hh-admm, or haar-hrr)");
  }
  return spec;
}

std::string MethodSpecName(const MethodSpec& spec) {
  switch (spec.method) {
    case MethodId::kSwEms:
      return "sw-ems";
    case MethodId::kSwEm:
      return "sw-em";
    case MethodId::kCfoAdaptive:
      return "cfo-" + std::to_string(spec.param);
    case MethodId::kCfoGrr:
      return "cfo-grr-" + std::to_string(spec.param);
    case MethodId::kCfoOlh:
      return "cfo-olh-" + std::to_string(spec.param);
    case MethodId::kCfoOue:
      return "cfo-oue-" + std::to_string(spec.param);
    case MethodId::kHh:
      return "hh";
    case MethodId::kHhAdmm:
      return "hh-admm";
    case MethodId::kHaarHrr:
      return "haar-hrr";
  }
  return "unknown";
}

Result<ProtocolPtr> MakeProtocolForSpec(const MethodSpec& spec) {
  if (!(spec.epsilon > 0.0) || !std::isfinite(spec.epsilon)) {
    return Status::InvalidArgument(
        "wire: method spec epsilon must be positive and finite");
  }
  switch (spec.method) {
    case MethodId::kSwEms:
    case MethodId::kSwEm: {
      SwEstimatorOptions options;
      options.epsilon = spec.epsilon;
      options.d = spec.d;
      options.post = spec.method == MethodId::kSwEms
                         ? SwEstimatorOptions::Post::kEms
                         : SwEstimatorOptions::Post::kEm;
      return MakeSwProtocol(options);
    }
    case MethodId::kCfoAdaptive:
      return MakeCfoBinningProtocol(spec.epsilon, spec.d, spec.param,
                                    FoKind::kAdaptive);
    case MethodId::kCfoGrr:
      return MakeCfoBinningProtocol(spec.epsilon, spec.d, spec.param,
                                    FoKind::kGrr);
    case MethodId::kCfoOlh:
      return MakeCfoBinningProtocol(spec.epsilon, spec.d, spec.param,
                                    FoKind::kOlh);
    case MethodId::kCfoOue:
      return MakeCfoBinningProtocol(spec.epsilon, spec.d, spec.param,
                                    FoKind::kOue);
    case MethodId::kHh:
      return MakeHhBatchedProtocol(spec.epsilon, spec.d, spec.param,
                                   HhPost::kConstrained);
    case MethodId::kHhAdmm:
      return MakeHhBatchedProtocol(spec.epsilon, spec.d, spec.param,
                                   HhPost::kAdmm);
    case MethodId::kHaarHrr:
      return MakeHaarHrrBatchedProtocol(spec.epsilon, spec.d);
  }
  return Status::InvalidArgument("wire: unknown method id in spec");
}

Result<FrameInfo> PeekFrame(std::span<const uint8_t> frame) {
  ByteReader in(frame);
  FrameInfo info;
  NUMDIST_ASSIGN_OR_RETURN(const Preamble preamble, ReadPreamble(&in));
  info.type = preamble.type;
  if (info.type == FrameType::kSnapshot) {
    NUMDIST_ASSIGN_OR_RETURN(const uint64_t epsilon_bits, in.U64());
    std::memcpy(&info.snapshot_epsilon, &epsilon_bits,
                sizeof(info.snapshot_epsilon));
    NUMDIST_ASSIGN_OR_RETURN(info.snapshot_d, in.U32());
    NUMDIST_ASSIGN_OR_RETURN(const uint8_t pipeline, in.U8());
    if (pipeline > 1) {
      return Status::InvalidArgument("wire: bad snapshot pipeline flag");
    }
    info.snapshot_discrete = pipeline == 1;
    NUMDIST_ASSIGN_OR_RETURN(info.snapshot_buckets, in.U32());
  } else if (info.type == FrameType::kAck) {
    NUMDIST_ASSIGN_OR_RETURN(info.seq.epoch, in.U64());
    NUMDIST_ASSIGN_OR_RETURN(info.seq.seq, in.U64());
    if (info.seq.seq == 0) {
      return Status::InvalidArgument(
          "wire: ack frame acknowledges seq 0 (sequence numbers start at 1)");
    }
    info.has_seq = true;
  } else {
    NUMDIST_ASSIGN_OR_RETURN(info.spec, ReadMethodBlock(&in));
    NUMDIST_ASSIGN_OR_RETURN(info.tenant, ReadTenantBlock(preamble, &in));
    NUMDIST_ASSIGN_OR_RETURN(info.seq, ReadSeqBlock(preamble, &in));
    info.has_seq = preamble.has_seq;
  }
  return info;
}

Result<FrameInfo> PeekFrame(std::string_view frame) {
  return PeekFrame(FrameBytes(frame));
}

Status EncodeReportFrame(const MethodSpec& spec, const Protocol& protocol,
                         const ReportChunk& chunk, std::string* out) {
  return EncodeReportFrame(spec, kDefaultTenant, protocol, chunk, out);
}

Status EncodeReportFrame(const MethodSpec& spec, uint32_t tenant,
                         const Protocol& protocol, const ReportChunk& chunk,
                         std::string* out) {
  // A payload-encode failure (e.g. a chunk from a different protocol)
  // must leave *out untouched — callers batching frames into one buffer
  // must never be left with orphan header bytes. Rolling back to the
  // prior size keeps the hot path writing straight into *out (this is
  // the encode path bench/wire_throughput holds to the 1M reports/s bar).
  const size_t prev_size = out->size();
  ByteWriter writer(out);
  WritePreamble(FrameType::kReports,
                tenant == kDefaultTenant ? 0 : kFlagTenantContext, &writer);
  WriteMethodBlock(spec, &writer);
  if (tenant != kDefaultTenant) writer.PutU32(tenant);
  const Status payload = protocol.EncodeChunkPayload(chunk, &writer);
  if (!payload.ok()) {
    out->resize(prev_size);
    return payload;
  }
  return Status::OK();
}

Result<std::unique_ptr<ReportChunk>> DecodeReportFrame(
    const MethodSpec& spec, const Protocol& protocol,
    std::span<const uint8_t> frame) {
  ByteReader in(frame);
  NUMDIST_ASSIGN_OR_RETURN(const Preamble preamble, ReadPreamble(&in));
  NUMDIST_RETURN_NOT_OK(ExpectFrameType(preamble.type, FrameType::kReports));
  NUMDIST_ASSIGN_OR_RETURN(const MethodSpec frame_spec, ReadMethodBlock(&in));
  NUMDIST_RETURN_NOT_OK(MatchSpec(frame_spec, spec));
  NUMDIST_RETURN_NOT_OK(ReadTenantBlock(preamble, &in).status());
  NUMDIST_RETURN_NOT_OK(ReadSeqBlock(preamble, &in).status());
  NUMDIST_ASSIGN_OR_RETURN(std::unique_ptr<ReportChunk> chunk,
                           protocol.DecodeChunkPayload(&in));
  NUMDIST_RETURN_NOT_OK(ExpectFullyConsumed(in, "report"));
  return chunk;
}

Status EncodeSketchFrame(const MethodSpec& spec, const Accumulator& acc,
                         std::string* out) {
  return EncodeSketchFrame(spec, kDefaultTenant, acc, out);
}

Status EncodeSketchFrame(const MethodSpec& spec, uint32_t tenant,
                         const Accumulator& acc, std::string* out) {
  ByteWriter writer(out);
  WritePreamble(FrameType::kSketch,
                tenant == kDefaultTenant ? 0 : kFlagTenantContext, &writer);
  WriteMethodBlock(spec, &writer);
  if (tenant != kDefaultTenant) writer.PutU32(tenant);
  WriteSketchPayload(acc.ExportState(), &writer);
  return Status::OK();
}

Result<std::unique_ptr<Accumulator>> DecodeSketchFrame(
    const MethodSpec& spec, const Protocol& protocol,
    std::span<const uint8_t> frame) {
  ByteReader in(frame);
  NUMDIST_ASSIGN_OR_RETURN(const Preamble preamble, ReadPreamble(&in));
  NUMDIST_RETURN_NOT_OK(ExpectFrameType(preamble.type, FrameType::kSketch));
  NUMDIST_ASSIGN_OR_RETURN(const MethodSpec frame_spec, ReadMethodBlock(&in));
  NUMDIST_RETURN_NOT_OK(MatchSpec(frame_spec, spec));
  NUMDIST_RETURN_NOT_OK(ReadTenantBlock(preamble, &in).status());
  NUMDIST_RETURN_NOT_OK(ReadSeqBlock(preamble, &in).status());
  NUMDIST_ASSIGN_OR_RETURN(const AccumulatorState state,
                           ReadSketchPayload(&in));
  NUMDIST_RETURN_NOT_OK(ExpectFullyConsumed(in, "sketch"));
  std::unique_ptr<Accumulator> acc = protocol.MakeAccumulator();
  NUMDIST_RETURN_NOT_OK(acc->ImportState(state));
  return acc;
}

Status EncodeSnapshotFrame(double epsilon, const StreamingAggregator& agg,
                           std::string* out) {
  const SwEstimatorOptions& options = agg.estimator().options();
  ByteWriter writer(out);
  WritePreamble(FrameType::kSnapshot, 0, &writer);
  writer.PutU64(MethodSpec::EpsilonBits(epsilon));
  // Full estimator context, not just the bucket count: two configurations
  // with coincident output widths but different observation models (e.g.
  // continuous d_out=64 vs discrete d+2b'=64) must never cross-merge.
  writer.PutU32(static_cast<uint32_t>(options.d));
  writer.PutU8(options.pipeline ==
                       SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize
                   ? 1
                   : 0);
  writer.PutU32(static_cast<uint32_t>(agg.counts().size()));
  writer.PutU64(agg.count());
  for (uint64_t c : agg.counts()) writer.PutU64(c);
  return Status::OK();
}

Status DecodeSnapshotFrameInto(double epsilon,
                               std::span<const uint8_t> frame,
                               StreamingAggregator* agg) {
  ByteReader in(frame);
  NUMDIST_ASSIGN_OR_RETURN(const Preamble preamble, ReadPreamble(&in));
  NUMDIST_RETURN_NOT_OK(ExpectFrameType(preamble.type, FrameType::kSnapshot));
  NUMDIST_ASSIGN_OR_RETURN(const uint64_t epsilon_bits, in.U64());
  if (epsilon_bits != MethodSpec::EpsilonBits(epsilon)) {
    return Status::InvalidArgument(
        "wire: snapshot epsilon group mismatch (bit-exact comparison)");
  }
  const SwEstimatorOptions& options = agg->estimator().options();
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t d, in.U32());
  if (d != options.d) {
    return Status::InvalidArgument(
        "wire: snapshot granularity d=" + std::to_string(d) +
        " does not match this aggregator (d=" + std::to_string(options.d) +
        ")");
  }
  NUMDIST_ASSIGN_OR_RETURN(const uint8_t pipeline, in.U8());
  if (pipeline > 1) {
    return Status::InvalidArgument("wire: bad snapshot pipeline flag");
  }
  const bool discrete =
      options.pipeline == SwEstimatorOptions::Pipeline::kBucketizeBeforeRandomize;
  if ((pipeline == 1) != discrete) {
    return Status::InvalidArgument(
        "wire: snapshot pipeline does not match this aggregator");
  }
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t buckets, in.U32());
  NUMDIST_ASSIGN_OR_RETURN(const uint64_t n, in.U64());
  if (buckets > in.remaining() / sizeof(uint64_t)) {
    return Status::OutOfRange(
        "wire: snapshot bucket count exceeds the remaining payload");
  }
  std::vector<uint64_t> counts;
  counts.reserve(buckets);
  for (uint32_t j = 0; j < buckets; ++j) {
    NUMDIST_ASSIGN_OR_RETURN(const uint64_t c, in.U64());
    counts.push_back(c);
  }
  NUMDIST_RETURN_NOT_OK(ExpectFullyConsumed(in, "snapshot"));
  return agg->MergeCounts(counts, n);
}

Status EncodeAckFrame(const FrameSeq& seq, std::string* out) {
  if (seq.seq == 0) {
    return Status::InvalidArgument(
        "wire: cannot ack seq 0 (sequence numbers start at 1)");
  }
  ByteWriter writer(out);
  WritePreamble(FrameType::kAck, 0, &writer);
  writer.PutU64(seq.epoch);
  writer.PutU64(seq.seq);
  return Status::OK();
}

Result<FrameSeq> DecodeAckFrame(std::span<const uint8_t> frame) {
  ByteReader in(frame);
  NUMDIST_ASSIGN_OR_RETURN(const Preamble preamble, ReadPreamble(&in));
  NUMDIST_RETURN_NOT_OK(ExpectFrameType(preamble.type, FrameType::kAck));
  FrameSeq seq;
  NUMDIST_ASSIGN_OR_RETURN(seq.epoch, in.U64());
  NUMDIST_ASSIGN_OR_RETURN(seq.seq, in.U64());
  if (seq.seq == 0) {
    return Status::InvalidArgument(
        "wire: ack frame acknowledges seq 0 (sequence numbers start at 1)");
  }
  NUMDIST_RETURN_NOT_OK(ExpectFullyConsumed(in, "ack"));
  return seq;
}

Result<FrameSeq> DecodeAckFrame(std::string_view frame) {
  return DecodeAckFrame(FrameBytes(frame));
}

Status StampSequenceContext(std::string* frame, const FrameSeq& seq) {
  if (seq.seq == 0) {
    return Status::InvalidArgument(
        "wire: cannot stamp seq 0 (sequence numbers start at 1)");
  }
  ByteReader in(FrameBytes(*frame));
  NUMDIST_ASSIGN_OR_RETURN(const Preamble preamble, ReadPreamble(&in));
  if (preamble.type != FrameType::kReports &&
      preamble.type != FrameType::kSketch) {
    return Status::InvalidArgument(
        "wire: only report and sketch frames take a sequence context");
  }
  if (preamble.has_seq) {
    return Status::InvalidArgument(
        "wire: frame already carries a sequence context");
  }
  // The sequence block's defined position: after the 8-byte preamble, the
  // 17-byte method block, and the 4-byte tenant block when present.
  const size_t insert_at = 8 + 17 + (preamble.has_tenant ? 4u : 0u);
  if (frame->size() < insert_at) {
    return Status::OutOfRange("wire: truncated frame (no room for context)");
  }
  std::string block;
  ByteWriter writer(&block);
  writer.PutU64(seq.epoch);
  writer.PutU64(seq.seq);
  frame->insert(insert_at, block);
  (*frame)[7] = static_cast<char>(static_cast<uint8_t>((*frame)[7]) |
                                  kFlagSequence);
  return Status::OK();
}

std::span<const uint8_t> FrameBytes(std::string_view frame) {
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(frame.data()), frame.size());
}

}  // namespace numdist::wire
