// Versioned, endian-stable binary wire format for distributed collection.
//
// The paper's deployment model is millions of clients sending one
// randomized report each to an untrusted aggregator; this layer gives
// every in-memory artifact of that pipeline a serialized form so it can
// cross a process or machine boundary:
//
//   report frames    one Protocol report chunk (a batch of perturbed
//                    client reports in the mechanism's wire format);
//   sketch frames    one Protocol accumulator's exact integer state
//                    (AccumulatorState) — what collector shards ship to
//                    the coordinator for merging;
//   snapshot frames  one StreamingAggregator's per-bucket counts — the
//                    scenario engine's shard-checkpoint currency.
//
// Every frame starts with the same 8-byte preamble (magic, version, frame
// type, flags) followed by a context block binding the frame to a concrete
// protocol configuration (method, epsilon as exact IEEE-754 bits,
// granularity). Decoding is strict Result<T>-based: truncation, bad magic,
// version skew, unknown enums, dimension mismatches, and trailing bytes
// are typed errors — malformed input can never corrupt an aggregate or
// invoke UB. Because accumulator state is exact integers, a
// serialize-merge-deserialize round trip is bit-identical to the
// in-process sharded path (tests/wire_process_test.cc proves this across
// OS processes).
//
// Byte-level layouts and the compatibility policy are specified in
// docs/WIRE_FORMAT.md; transport framing (length prefixes over
// sockets/pipes) lives one layer up in serve/framing.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "eval/streaming.h"
#include "protocol/protocol.h"

namespace numdist::wire {

/// First 4 bytes of every frame: "NDWP" on the wire.
inline constexpr uint32_t kMagic = 0x5057444E;
/// Current (and only) format version. Decoders accept exactly this version;
/// see docs/WIRE_FORMAT.md for the compatibility policy.
inline constexpr uint16_t kVersion = 1;

/// Preamble flag bit 0: the frame carries a tenant context — a u32 tenant
/// id immediately after the method context block, routing the frame to a
/// per-tenant accumulator (serve/collector.h). Defined for report and
/// sketch frames only; a flagged snapshot frame is a typed error. This is
/// the first use of the v1 flags byte, the documented forward-compatibility
/// escape hatch: frames without the flag are byte-identical to pre-tenant
/// encoders, and all other bits must still be zero.
inline constexpr uint8_t kFlagTenantContext = 0x01;

/// Preamble flag bit 1: the frame carries a sequence context — a u64
/// client epoch + u64 sequence number after the method block (and after
/// the tenant block, when both flags are set). A collector acknowledges
/// each sequenced frame with an ack frame carrying the same (epoch, seq)
/// once the frame is durably absorbed, and deduplicates re-sends of an
/// already-claimed (epoch, seq) — the exactly-once substrate under
/// client retry (net/retry.h). Report and sketch frames only; sequence
/// numbers start at 1 (seq 0 is a typed error).
inline constexpr uint8_t kFlagSequence = 0x02;

/// The default tenant. Frames for tenant 0 are encoded WITHOUT the tenant
/// flag (the canonical legacy encoding); decoders treat a flagged tenant
/// id of 0 as the same default tenant.
inline constexpr uint32_t kDefaultTenant = 0;

/// Frame discriminator (preamble byte 6). Values are part of the wire
/// format: never renumber, only append.
enum class FrameType : uint8_t {
  kReports = 1,   ///< A batch of perturbed client reports (one chunk).
  kSketch = 2,    ///< A Protocol accumulator's exact integer state.
  kSnapshot = 3,  ///< A StreamingAggregator's per-bucket counts.
  kAck = 4,       ///< Collector -> client: one sequenced frame is durable.
};

/// Sequence context of a frame (kFlagSequence): which client instance sent
/// it (`epoch`, chosen by the client, unique per client lifetime) and its
/// per-epoch position (`seq`, starting at 1). The pair is the dedup key
/// the collector's exactly-once window is built on.
struct FrameSeq {
  uint64_t epoch = 0;
  uint64_t seq = 0;
};

/// Method tag carried by report and sketch frames. Values are part of the
/// wire format: never renumber, only append.
enum class MethodId : uint8_t {
  kSwEms = 1,
  kSwEm = 2,
  kCfoAdaptive = 3,  ///< CFO binning over the variance-adaptive oracle.
  kCfoGrr = 4,
  kCfoOlh = 5,
  kCfoOue = 6,
  kHh = 7,
  kHhAdmm = 8,
  kHaarHrr = 9,
};

/// Complete protocol configuration a frame is bound to. Two endpoints can
/// exchange frames iff their specs are identical (epsilon compared as
/// exact bits — an aggregate mixes budgets only if the bits agree).
struct MethodSpec {
  MethodId method = MethodId::kSwEms;
  /// Family parameter: bins for the CFO methods, tree fan-out beta for
  /// HH/HH-ADMM, 0 for everything else.
  uint32_t param = 0;
  /// Privacy budget; travels as its IEEE-754 bit pattern (exact).
  double epsilon = 1.0;
  /// Reconstruction granularity d.
  uint32_t d = 64;

  /// The exact bit pattern epsilon travels as. Spec equality lives in one
  /// place — the decoder's field-by-field MatchSpec (wire.cc), which also
  /// produces the per-field mismatch errors.
  static uint64_t EpsilonBits(double epsilon);
};

/// Parses a CLI-style method name into a spec: "sw-ems", "sw-em",
/// "cfo-<bins>" (adaptive), "cfo-grr-<bins>", "cfo-olh-<bins>",
/// "cfo-oue-<bins>", "hh", "hh-admm" (beta fixed at 4), "haar-hrr".
Result<MethodSpec> ParseMethodSpec(const std::string& method, double epsilon,
                                   uint32_t d);

/// Canonical display name of a spec's method (e.g. "cfo-olh-32").
std::string MethodSpecName(const MethodSpec& spec);

/// Instantiates the protocol a spec describes. Two processes building the
/// same spec get interchangeable protocols: chunks and sketches encoded by
/// one decode and absorb on the other.
Result<ProtocolPtr> MakeProtocolForSpec(const MethodSpec& spec);

/// Parsed frame preamble + context, without touching the payload. Lets a
/// collector dispatch and validate a frame before committing to a decode.
struct FrameInfo {
  FrameType type = FrameType::kReports;
  /// Context of report/sketch frames (undefined for snapshots).
  MethodSpec spec;
  /// Tenant context (report/sketch frames): kDefaultTenant unless the
  /// frame carries the kFlagTenantContext flag and a non-zero id.
  uint32_t tenant = kDefaultTenant;
  /// Sequence context: set for report/sketch frames carrying
  /// kFlagSequence, and for ack frames (whose payload IS a FrameSeq).
  bool has_seq = false;
  FrameSeq seq;
  /// Context of snapshot frames (undefined otherwise): epsilon group,
  /// estimator input granularity + pipeline, and output-bucket count.
  double snapshot_epsilon = 0.0;
  uint32_t snapshot_d = 0;
  bool snapshot_discrete = false;
  uint32_t snapshot_buckets = 0;
};

/// Validates the preamble and context block of any frame. Typed errors for
/// truncation, bad magic, version skew, unknown frame type / method id,
/// and undefined flag bits (only kFlagTenantContext is defined, and only
/// on report/sketch frames).
Result<FrameInfo> PeekFrame(std::span<const uint8_t> frame);
Result<FrameInfo> PeekFrame(std::string_view frame);

/// Encodes one report chunk produced by `protocol` (which must match
/// `spec`) into a self-describing report frame appended to `*out`.
Status EncodeReportFrame(const MethodSpec& spec, const Protocol& protocol,
                         const ReportChunk& chunk, std::string* out);

/// As above, bound to a tenant: a non-default tenant id travels in the
/// frame's tenant context block (preamble flag kFlagTenantContext).
/// `tenant == kDefaultTenant` produces the exact bytes of the untagged
/// overload.
Status EncodeReportFrame(const MethodSpec& spec, uint32_t tenant,
                         const Protocol& protocol, const ReportChunk& chunk,
                         std::string* out);

/// Strictly decodes a report frame: the frame's context must equal `spec`,
/// the payload must decode under `protocol`, and the payload must consume
/// the frame exactly (trailing bytes are an error).
Result<std::unique_ptr<ReportChunk>> DecodeReportFrame(
    const MethodSpec& spec, const Protocol& protocol,
    std::span<const uint8_t> frame);

/// Encodes an accumulator's exact integer state into a sketch frame
/// appended to `*out`.
Status EncodeSketchFrame(const MethodSpec& spec, const Accumulator& acc,
                         std::string* out);

/// As above, bound to a tenant (see the tenant EncodeReportFrame
/// overload). Tenant-tagged sketch frames are how a collector ships
/// per-tenant aggregates upstream without collapsing them: a coordinator
/// routes each to the same tenant's accumulator.
Status EncodeSketchFrame(const MethodSpec& spec, uint32_t tenant,
                         const Accumulator& acc, std::string* out);

/// Strictly decodes a sketch frame into a fresh accumulator of `protocol`.
/// The decoded accumulator is bit-equivalent to the encoded one: merging
/// it reproduces the exact in-process aggregate.
Result<std::unique_ptr<Accumulator>> DecodeSketchFrame(
    const MethodSpec& spec, const Protocol& protocol,
    std::span<const uint8_t> frame);

/// Encodes a StreamingAggregator's counts (with its epsilon-group context)
/// into a snapshot frame appended to `*out`.
Status EncodeSnapshotFrame(double epsilon, const StreamingAggregator& agg,
                           std::string* out);

/// Strictly decodes a snapshot frame and merges its counts into `*agg`
/// (shape- and epsilon-checked). Adding counts is exact, so decode-merge
/// is bit-identical to StreamingAggregator::Merge on the source shard.
Status DecodeSnapshotFrameInto(double epsilon,
                               std::span<const uint8_t> frame,
                               StreamingAggregator* agg);

/// Encodes an ack frame for one sequenced frame, appended to `*out`.
/// Payload: the acknowledged (epoch, seq). Acks flow collector -> client;
/// a collector handed an ack frame as input rejects it.
Status EncodeAckFrame(const FrameSeq& seq, std::string* out);

/// Strictly decodes an ack frame (exact length, seq >= 1).
Result<FrameSeq> DecodeAckFrame(std::span<const uint8_t> frame);
Result<FrameSeq> DecodeAckFrame(std::string_view frame);

/// Stamps a sequence context onto an already-encoded report or sketch
/// frame: sets kFlagSequence and inserts the 16-byte (epoch, seq) block at
/// its defined position. The stamped frame decodes to the same payload.
/// Typed errors for non-report/sketch frames, an already-stamped frame,
/// or seq == 0. This is how the retry sender (net/retry.h) numbers frames
/// without re-encoding their payloads.
Status StampSequenceContext(std::string* frame, const FrameSeq& seq);

/// Read-only byte view of frame bytes held in a string/string_view.
std::span<const uint8_t> FrameBytes(std::string_view frame);

}  // namespace numdist::wire
