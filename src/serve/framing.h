// Stream transport for wire frames: u32 little-endian length prefix +
// frame bytes, over any std::istream/std::ostream (pipes, sockets wrapped
// in stdio, files). The length prefix is transport-only — everything
// inside the frame, including its own integrity checks, is the wire
// layer's business (wire/wire.h).
//
// Reading is strict: a clean EOF *between* frames is a normal end of
// stream, but an EOF inside a length prefix or inside a frame body is a
// typed OutOfRange error — a crashed peer can never be mistaken for a
// completed stream. A length prefix above `max_bytes` is rejected before
// any allocation, so garbage on the wire cannot drive memory use.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"

namespace numdist::serve {

/// Default ceiling on a single frame's size (64 MiB). Generous for sketch
/// frames (a d=1024 OLH sketch is ~8 KiB) while keeping a corrupt or
/// hostile length prefix from requesting an absurd allocation.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Writes one length-prefixed frame. Fails if the stream rejects bytes or
/// the frame exceeds `max_bytes` (the receiver would refuse it anyway).
Status WriteFrame(std::ostream& out, std::string_view frame,
                  size_t max_bytes = kMaxFrameBytes);

/// Reads one length-prefixed frame into `*frame`.
///
/// Returns OK with `*eof = true` (and `*frame` empty) on a clean end of
/// stream before any prefix byte; OK with `*eof = false` on a full frame;
/// OutOfRange on a stream that ends mid-prefix or mid-frame; and
/// InvalidArgument on a prefix above `max_bytes`.
Status ReadFrame(std::istream& in, std::string* frame, bool* eof,
                 size_t max_bytes = kMaxFrameBytes);

}  // namespace numdist::serve
