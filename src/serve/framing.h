// Stream transport for wire frames: u32 little-endian length prefix +
// frame bytes, over any std::istream/std::ostream (pipes, sockets wrapped
// in stdio, files). The length prefix is transport-only — everything
// inside the frame, including its own integrity checks, is the wire
// layer's business (wire/wire.h).
//
// Reading is strict: a clean EOF *between* frames is a normal end of
// stream, but an EOF inside a length prefix or inside a frame body is a
// typed OutOfRange error — a crashed peer can never be mistaken for a
// completed stream. A length prefix above `max_bytes` is rejected before
// any allocation, so garbage on the wire cannot drive memory use.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"

namespace numdist::serve {

/// Default ceiling on a single frame's size (64 MiB). Generous for sketch
/// frames (a d=1024 OLH sketch is ~8 KiB) while keeping a corrupt or
/// hostile length prefix from requesting an absurd allocation.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Writes one length-prefixed frame. Fails if the stream rejects bytes or
/// the frame exceeds `max_bytes` (the receiver would refuse it anyway).
Status WriteFrame(std::ostream& out, std::string_view frame,
                  size_t max_bytes = kMaxFrameBytes);

/// Appends the u32 little-endian transport prefix for a frame of
/// `frame_len` bytes to `*out` — for callers that assemble framed bytes
/// into their own buffers (the event-loop server's ack queue, the retry
/// sender). `frame_len` must fit a u32; callers enforce their own frame
/// ceiling first.
void AppendFramePrefix(size_t frame_len, std::string* out);

/// Reads one length-prefixed frame into `*frame`.
///
/// Returns OK with `*eof = true` (and `*frame` empty) on a clean end of
/// stream before any prefix byte; OK with `*eof = false` on a full frame;
/// OutOfRange on a stream that ends mid-prefix or mid-frame; and
/// InvalidArgument on a prefix above `max_bytes`.
Status ReadFrame(std::istream& in, std::string* frame, bool* eof,
                 size_t max_bytes = kMaxFrameBytes);

/// \brief Incremental frame reassembly for non-blocking transports.
///
/// The push-mode counterpart of ReadFrame: an event loop Feed()s whatever
/// bytes a socket produced — at any split granularity, down to one byte at
/// a time — and Next() pops completed frames. The accept/reject taxonomy
/// is identical to ReadFrame's, byte for byte of input:
///
///   hostile prefix  Feed() rejects a length prefix above `max_bytes` with
///                   InvalidArgument the moment its 4th byte arrives and
///                   before any payload-sized allocation; the decoder is
///                   poisoned (every later call reports the same error);
///   mid-stream EOF  AtEnd() distinguishes a clean boundary (OK) from a
///                   connection that died inside a prefix or frame body
///                   (OutOfRange), exactly like ReadFrame's eof handling.
///
/// tests/net_test.cc drives both decoders over identical byte streams cut
/// at adversarial points and asserts they accept/reject identically.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_bytes = kMaxFrameBytes)
      : max_bytes_(max_bytes) {}

  /// Appends transport bytes. Returns the poisoning error, if any (a
  /// hostile length prefix — the only way Feed itself can fail).
  Status Feed(std::string_view bytes);

  /// Pops the next completed frame into `*frame`. False when no complete
  /// frame is buffered (or the decoder is poisoned).
  bool Next(std::string* frame);

  /// End-of-stream verdict: OK on a clean frame boundary, the poisoning
  /// error if poisoned, OutOfRange if the stream ended inside a length
  /// prefix or frame body (same wording as ReadFrame).
  Status AtEnd() const;

  /// True when a partially received prefix or frame body is buffered —
  /// i.e. an EOF right now would be a mid-stream error.
  bool mid_frame() const { return have_len_ || buffered_bytes() > 0; }

  /// Undecoded bytes currently held (a backpressure signal).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  /// Parses the length prefix at pos_ once 4 bytes are buffered; sets the
  /// poisoning error on a hostile length.
  void ParsePrefix();

  size_t max_bytes_;
  Status error_ = Status::OK();
  std::string buf_;       // unconsumed transport bytes
  size_t pos_ = 0;        // consumed offset into buf_
  bool have_len_ = false; // prefix at pos_ already validated
  uint32_t len_ = 0;      // body length when have_len_
};

}  // namespace numdist::serve
