// The cross-process collector: one CollectorSession per OS process, each
// absorbing a stream of wire frames into Protocol accumulators.
//
// Deployment shape (mirroring the paper's aggregator, scaled out):
//
//   client fleet ──report frames──▶ collector 1 ─┐
//   client fleet ──report frames──▶ collector 2 ─┤─sketch frames─▶ coordinator
//   client fleet ──report frames──▶ collector N ─┘                 (merge +
//                                                                 reconstruct)
//
// Every collector and the coordinator are configured with the same
// MethodSpec; frames carrying any other spec are rejected before their
// payload is touched. Because accumulator state is exact integers and
// merging is associative, the coordinator's estimate is bit-identical to a
// single-process sharded run over the same report chunks — the invariant
// tests/wire_process_test.cc asserts across real child processes. Since
// sketch-frame absorption is the same path, coordinators compose into a
// merge TREE: any shape (flat, binary, lopsided) over the same shard set
// produces a byte-identical root sketch (tests/merge_tree_test.cc).
//
// Multi-tenancy: frames carrying a tenant context (wire::kFlagTenantContext)
// are routed to per-tenant accumulators inside the same session, with
// per-tenant report/epsilon budgets enforced by a TenantLedger shared
// across every session of one process (so the event-loop server's parallel
// sub-sessions enforce one global budget). An over-budget frame is a typed
// FailedPrecondition rejection that leaves every accumulator untouched.
//
// Durability: RecoverAndAttachWal replays a write-ahead log (serve/wal.h)
// and then logs every accepted frame, so a collector killed at any byte
// offset restarts with the exact pre-crash state.
//
// tools/collector_cli wraps ServeStream as a stdin/stdout daemon;
// tools/report_client generates deterministic client load against it.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/framing.h"
#include "serve/wal.h"
#include "wire/wire.h"

namespace numdist::serve {

/// Per-tenant admission caps. Zero means unlimited on that axis.
struct TenantBudget {
  /// Most reports this tenant may contribute (report frames + merged
  /// sketch frames both count).
  uint64_t max_reports = 0;
  /// Privacy-odometer cap: the tenant's cumulative epsilon spend —
  /// reports × the session epsilon (every frame of one session carries
  /// the same spec, so per-report spend is constant) — may not exceed
  /// this.
  double max_epsilon = 0.0;
};

/// \brief Thread-safe per-tenant budget accounting, shared across every
/// CollectorSession of one collector process.
///
/// The event-loop server absorbs frames in parallel into per-slot
/// sub-sessions; sharing one ledger is what makes the budget a single
/// global cap instead of one cap per slot. Charges are reservations: a
/// frame is charged before it is absorbed and refunded if absorption
/// fails, so the spend always equals the reports actually aggregated.
class TenantLedger {
 public:
  void SetBudget(uint32_t tenant, TenantBudget budget);

  /// Reserves `num_reports` for `tenant` at `epsilon` per report. Typed
  /// FailedPrecondition when either cap would be exceeded; the spend is
  /// unchanged on rejection.
  Status Charge(uint32_t tenant, uint64_t num_reports, double epsilon);
  /// Releases a reservation whose absorb failed.
  void Refund(uint32_t tenant, uint64_t num_reports);

  uint64_t spent_reports(uint32_t tenant) const;
  /// Zeroes every tenant's spend, keeping budgets (checkpoint restore).
  void ResetSpend();
  /// Overwrites one tenant's spend (checkpoint restore).
  void SetSpent(uint32_t tenant, uint64_t num_reports);

 private:
  struct Entry {
    TenantBudget budget;
    uint64_t spent = 0;
  };
  mutable std::mutex mu_;
  std::map<uint32_t, Entry> entries_;
};

/// \brief Thread-safe exactly-once window over (epoch, seq) frame ids,
/// shared across every CollectorSession of one collector process (like
/// the TenantLedger, so the event-loop server's parallel sub-sessions
/// dedup against one global window).
///
/// Per epoch the window is a floor (every seq <= floor absorbed) plus a
/// sparse set above it. Claim/Release only touch the sparse set; the
/// floor advances in Export, which call sites run single-threaded
/// between absorption batches. Defense in depth for the remaining race
/// (an Export folding a claim whose absorb is still in flight on
/// another slot): a Release at or below the floor records the seq as a
/// hole that Claim re-accepts and the next Export re-opens the window
/// around, so a failed absorb can never strand its client's retry as a
/// false duplicate.
class SequenceTracker {
 public:
  /// Claims (epoch, seq): true when first seen (the caller absorbs the
  /// frame), false when already claimed (the frame is a duplicate re-send
  /// — skip it, but ack it again).
  bool Claim(uint64_t epoch, uint64_t seq);
  /// Rolls back a claim whose absorb failed, so the client's re-send is
  /// accepted.
  void Release(uint64_t epoch, uint64_t seq);
  /// Compressed snapshot (floors advanced through contiguous sparse runs)
  /// for WAL checkpointing; empty when nothing was ever claimed.
  std::vector<WalSeqEntry> Export();
  /// RESETS the window to a checkpointed snapshot.
  void Restore(const std::vector<WalSeqEntry>& entries);

 private:
  struct Window {
    uint64_t floor = 0;
    std::set<uint64_t> sparse;
    /// Claims released at or below the floor (a failed absorb racing an
    /// Export fold): holes in the window until re-claimed or exported.
    std::set<uint64_t> released;
  };
  mutable std::mutex mu_;
  std::map<uint64_t, Window> windows_;
};

/// What HandleFrame did with one frame, for callers that acknowledge
/// sequenced frames (the serve loops and the event-loop server).
struct FrameOutcome {
  /// The frame mutated the aggregate (decoded, charged, absorbed, logged).
  bool absorbed = false;
  /// An already-claimed (epoch, seq): nothing was absorbed, but the frame
  /// must be acked again — the client's ack was lost, not the frame.
  bool duplicate = false;
  /// The frame carried a sequence context (duplicates and absorbed
  /// sequenced frames both get an ack for `seq`).
  bool has_seq = false;
  wire::FrameSeq seq;
};

/// \brief One collector (or coordinator) process's aggregation state.
class CollectorSession {
 public:
  /// Builds the protocol the spec describes and an empty accumulator.
  static Result<CollectorSession> Make(const wire::MethodSpec& spec);

  const wire::MethodSpec& spec() const { return spec_; }
  /// Reports absorbed so far (report frames + merged sketch frames),
  /// across the default and every tenant accumulator.
  uint64_t num_reports() const;

  /// Folds one wire frame in: report frames are decoded and absorbed,
  /// sketch frames are decoded and merged — each into the accumulator of
  /// the frame's tenant context (the default accumulator when untagged).
  /// Snapshot, ack, malformed, and over-budget frames are typed errors; a
  /// failed frame leaves every accumulator, the ledger, and the dedup
  /// window untouched — except a WAL-append failure AFTER the aggregate
  /// committed, which keeps the frame absorbed and claimed (releasing it
  /// would double-count the retry; the error is fatal to serving and the
  /// frame is never acked). A sequenced frame whose (epoch, seq) was
  /// already claimed is a DUPLICATE: skipped without error (see
  /// FrameOutcome).
  /// `outcome` (optional) reports what happened, for ack emission.
  Status HandleFrame(std::span<const uint8_t> frame,
                     FrameOutcome* outcome = nullptr);
  Status HandleFrame(std::string_view frame, FrameOutcome* outcome = nullptr);

  /// This session's TOTAL aggregate (default + all tenants merged) as one
  /// untagged wire sketch frame (what a collector ships to a coordinator
  /// when per-tenant separation is not needed downstream).
  Result<std::string> EncodeSketch() const;

  /// The session's full state as one sketch frame per non-empty
  /// accumulator: the default tenant's untagged frame first, then one
  /// tenant-tagged frame per tenant in ascending id order. This is the
  /// lossless export — shipping these upstream preserves per-tenant
  /// routing, and it is the WAL's checkpoint currency.
  Result<std::vector<std::string>> EncodeSketches() const;

  /// Exact-integer snapshot of the aggregate (protocol.h). With tenants
  /// in play this is the MERGED total state; ExportTenantState reads one
  /// tenant. Read-only: live estimation sums these across sessions
  /// without touching the aggregate, so periodic estimates can never
  /// perturb the final sketch.
  AccumulatorState ExportState() const;
  /// One tenant's exact state (wire::kDefaultTenant = the default
  /// accumulator). Unknown tenants are InvalidArgument.
  Result<AccumulatorState> ExportTenantState(uint32_t tenant) const;
  /// Tenants with an accumulator, ascending (excludes the default).
  std::vector<uint32_t> TenantIds() const;

  /// Budget accounting. The ledger is shared: the server points every
  /// sub-session at one ledger so budgets cap the process-global spend.
  void SetTenantBudget(uint32_t tenant, TenantBudget budget);
  const std::shared_ptr<TenantLedger>& ledger() const { return ledger_; }
  void set_ledger(std::shared_ptr<TenantLedger> ledger);

  /// The exactly-once dedup window. Shared like the ledger: the server
  /// points every sub-session at one tracker so a re-sent frame dedups
  /// no matter which slot absorbs it.
  const std::shared_ptr<SequenceTracker>& sequence_tracker() const {
    return tracker_;
  }
  void set_sequence_tracker(std::shared_ptr<SequenceTracker> tracker);

  /// Replication hook: when set, every frame this session absorbs (WAL
  /// replay included; never duplicates) is handed to `forward` AFTER
  /// local absorb + WAL append — the primary-to-standby stream. A forward
  /// error fails HandleFrame, but the frame stays absorbed and claimed
  /// locally (it is already durable here).
  void set_forward(std::function<Status(std::string_view frame)> forward);

  /// Merges every accumulator of `other` (default + tenants, per tenant)
  /// into this session WITHOUT charging the ledger — the frames behind
  /// `other`'s state were charged when first absorbed. This is how the
  /// server folds its per-slot sub-sessions into the main session at
  /// drain without double-spending budgets or collapsing tenants.
  Status AbsorbSession(const CollectorSession& other);

  /// Replaces the session's state with the given sketch frames (one per
  /// tenant, as produced by EncodeSketches) — the WAL checkpoint restore:
  /// RESET semantics, not merge. On failure the session is unchanged.
  Status ResetToSketches(const std::vector<std::string>& sketches);

  /// Replays the WAL at `path` into this session (frames through
  /// HandleFrame, checkpoints through ResetToSketches, seq checkpoints
  /// into the dedup window) and keeps the log attached: every
  /// subsequently accepted frame is appended, and the log is compacted
  /// every options.checkpoint_every_frames frames. With
  /// options.segment_bytes > 0 `path` is a segment directory (WalLog).
  /// The torn-tail contract is ReplayWal's; the returned stats carry it.
  Result<WalReplayStats> RecoverAndAttachWal(const std::string& path,
                                             const WalOptions& options = {});
  /// Compacts the attached WAL down to a checkpoint of the current state
  /// plus the dedup window (FailedPrecondition when no WAL is attached).
  Status CompactWal();
  bool has_wal() const { return wal_ != nullptr; }

  /// Inverts the TOTAL aggregate (default + tenants) into the method
  /// output. Requires num_reports() > 0.
  Result<MethodOutput> Reconstruct() const;

 private:
  CollectorSession(wire::MethodSpec spec, ProtocolPtr protocol,
                   std::unique_ptr<Accumulator> acc);

  /// The tenant's accumulator, or null when the tenant has none yet.
  Accumulator* FindTenant(uint32_t tenant);
  const Accumulator* FindTenant(uint32_t tenant) const;
  /// The total aggregate as one freshly merged accumulator.
  Result<std::unique_ptr<Accumulator>> MergedTotal() const;
  /// The decode-charge-absorb-log core of HandleFrame (dedup handled by
  /// the caller). `committed` reports whether the accumulator/ledger
  /// mutation took: false on any rolled-back failure, true once the
  /// frame is aggregated — including when the trailing WAL append then
  /// fails, so the caller knows NOT to release the frame's claim.
  Status AbsorbFrame(const wire::FrameInfo& info,
                     std::span<const uint8_t> frame, bool* committed);
  /// Appends an accepted frame to the WAL and runs the checkpoint cadence.
  Status LogAccepted(std::span<const uint8_t> frame);

  wire::MethodSpec spec_;
  ProtocolPtr protocol_;
  /// The default tenant's accumulator (untagged frames).
  std::unique_ptr<Accumulator> acc_;
  /// Lazily created per-tenant accumulators (tenant-tagged frames).
  std::map<uint32_t, std::unique_ptr<Accumulator>> tenants_;
  std::shared_ptr<TenantLedger> ledger_;
  std::shared_ptr<SequenceTracker> tracker_;
  std::function<Status(std::string_view frame)> forward_;
  std::unique_ptr<WalLog> wal_;
  uint64_t wal_frames_since_checkpoint_ = 0;
};

/// The collector daemon loop: reads length-prefixed frames from `in` until
/// a clean EOF, folds each into `session`, then writes the session's
/// length-prefixed sketch frames to `out` (one per non-empty tenant; a
/// tenantless session writes exactly one untagged frame, byte-identical
/// to the pre-tenant protocol). Any frame error aborts the loop with that
/// error (and writes nothing), so a partial stream can never masquerade
/// as a completed shard. iostreams cannot time out a blocked read; use
/// ServeFd when the peer may stall.
Status ServeStream(std::istream& in, std::ostream& out,
                   CollectorSession* session);

struct ServeFdOptions {
  /// Read deadline, armed only while a frame is partially received: a peer
  /// that stalls for this long MID-FRAME surfaces as the same typed
  /// OutOfRange error a mid-frame EOF does, instead of hanging the
  /// collector forever. 0 disables the deadline. A peer idling between
  /// complete frames is legitimate (an open but quiet client) and never
  /// times out.
  int read_timeout_ms = 0;
  /// Per-frame size ceiling, as in ReadFrame.
  size_t max_bytes = kMaxFrameBytes;
};

/// ServeStream over a raw file descriptor (pipes, stdio, sockets): the
/// same lifecycle — frames to clean EOF, then the sketch frames on `out` —
/// but read via poll(2) + the incremental FrameDecoder, which is what
/// makes the mid-frame read deadline implementable at all. Sequenced
/// frames (wire::kFlagSequence) are acknowledged on `out` as soon as they
/// are durably absorbed (or recognized as duplicates), interleaved before
/// the final sketches. On sequence-free input, byte-for-byte
/// output-compatible with ServeStream.
Status ServeFd(int in_fd, std::ostream& out, CollectorSession* session,
               const ServeFdOptions& options = {});

}  // namespace numdist::serve
