// The cross-process collector: one CollectorSession per OS process, each
// absorbing a stream of wire frames into a Protocol accumulator.
//
// Deployment shape (mirroring the paper's aggregator, scaled out):
//
//   client fleet ──report frames──▶ collector 1 ─┐
//   client fleet ──report frames──▶ collector 2 ─┤─sketch frames─▶ coordinator
//   client fleet ──report frames──▶ collector N ─┘                 (merge +
//                                                                 reconstruct)
//
// Every collector and the coordinator are configured with the same
// MethodSpec; frames carrying any other spec are rejected before their
// payload is touched. Because accumulator state is exact integers and
// merging is associative, the coordinator's estimate is bit-identical to a
// single-process sharded run over the same report chunks — the invariant
// tests/wire_process_test.cc asserts across real child processes.
//
// tools/collector_cli wraps ServeStream as a stdin/stdout daemon;
// tools/report_client generates deterministic client load against it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "common/result.h"
#include "serve/framing.h"
#include "wire/wire.h"

namespace numdist::serve {

/// \brief One collector (or coordinator) process's aggregation state.
class CollectorSession {
 public:
  /// Builds the protocol the spec describes and an empty accumulator.
  static Result<CollectorSession> Make(const wire::MethodSpec& spec);

  const wire::MethodSpec& spec() const { return spec_; }
  /// Reports absorbed so far (report frames + merged sketch frames).
  uint64_t num_reports() const { return acc_->num_reports(); }

  /// Folds one wire frame in: report frames are decoded and absorbed,
  /// sketch frames are decoded and merged. Snapshot or malformed frames
  /// are typed errors; a failed frame leaves the aggregate untouched.
  Status HandleFrame(std::span<const uint8_t> frame);
  Status HandleFrame(std::string_view frame);

  /// This session's aggregate as a wire sketch frame (what a collector
  /// ships to the coordinator).
  Result<std::string> EncodeSketch() const;

  /// Exact-integer snapshot of the accumulator (protocol.h). Read-only:
  /// live estimation sums these across sessions without touching the
  /// aggregate, so periodic estimates can never perturb the final sketch.
  AccumulatorState ExportState() const { return acc_->ExportState(); }

  /// Inverts the aggregate into the method output. Requires
  /// num_reports() > 0.
  Result<MethodOutput> Reconstruct() const;

 private:
  CollectorSession(wire::MethodSpec spec, ProtocolPtr protocol,
                   std::unique_ptr<Accumulator> acc);

  wire::MethodSpec spec_;
  ProtocolPtr protocol_;
  std::unique_ptr<Accumulator> acc_;
};

/// The collector daemon loop: reads length-prefixed frames from `in` until
/// a clean EOF, folds each into `session`, then writes the session's
/// length-prefixed sketch frame to `out`. Any frame error aborts the loop
/// with that error (and writes nothing), so a partial stream can never
/// masquerade as a completed shard. iostreams cannot time out a blocked
/// read; use ServeFd when the peer may stall.
Status ServeStream(std::istream& in, std::ostream& out,
                   CollectorSession* session);

struct ServeFdOptions {
  /// Read deadline, armed only while a frame is partially received: a peer
  /// that stalls for this long MID-FRAME surfaces as the same typed
  /// OutOfRange error a mid-frame EOF does, instead of hanging the
  /// collector forever. 0 disables the deadline. A peer idling between
  /// complete frames is legitimate (an open but quiet client) and never
  /// times out.
  int read_timeout_ms = 0;
  /// Per-frame size ceiling, as in ReadFrame.
  size_t max_bytes = kMaxFrameBytes;
};

/// ServeStream over a raw file descriptor (pipes, stdio, sockets): the
/// same lifecycle — frames to clean EOF, then one sketch frame on `out` —
/// but read via poll(2) + the incremental FrameDecoder, which is what
/// makes the mid-frame read deadline implementable at all. Byte-for-byte
/// output-compatible with ServeStream on the same input.
Status ServeFd(int in_fd, std::ostream& out, CollectorSession* session,
               const ServeFdOptions& options = {});

}  // namespace numdist::serve
