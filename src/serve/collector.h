// The cross-process collector: one CollectorSession per OS process, each
// absorbing a stream of wire frames into a Protocol accumulator.
//
// Deployment shape (mirroring the paper's aggregator, scaled out):
//
//   client fleet ──report frames──▶ collector 1 ─┐
//   client fleet ──report frames──▶ collector 2 ─┤─sketch frames─▶ coordinator
//   client fleet ──report frames──▶ collector N ─┘                 (merge +
//                                                                 reconstruct)
//
// Every collector and the coordinator are configured with the same
// MethodSpec; frames carrying any other spec are rejected before their
// payload is touched. Because accumulator state is exact integers and
// merging is associative, the coordinator's estimate is bit-identical to a
// single-process sharded run over the same report chunks — the invariant
// tests/wire_process_test.cc asserts across real child processes.
//
// tools/collector_cli wraps ServeStream as a stdin/stdout daemon;
// tools/report_client generates deterministic client load against it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "common/result.h"
#include "wire/wire.h"

namespace numdist::serve {

/// \brief One collector (or coordinator) process's aggregation state.
class CollectorSession {
 public:
  /// Builds the protocol the spec describes and an empty accumulator.
  static Result<CollectorSession> Make(const wire::MethodSpec& spec);

  const wire::MethodSpec& spec() const { return spec_; }
  /// Reports absorbed so far (report frames + merged sketch frames).
  uint64_t num_reports() const { return acc_->num_reports(); }

  /// Folds one wire frame in: report frames are decoded and absorbed,
  /// sketch frames are decoded and merged. Snapshot or malformed frames
  /// are typed errors; a failed frame leaves the aggregate untouched.
  Status HandleFrame(std::span<const uint8_t> frame);
  Status HandleFrame(std::string_view frame);

  /// This session's aggregate as a wire sketch frame (what a collector
  /// ships to the coordinator).
  Result<std::string> EncodeSketch() const;

  /// Inverts the aggregate into the method output. Requires
  /// num_reports() > 0.
  Result<MethodOutput> Reconstruct() const;

 private:
  CollectorSession(wire::MethodSpec spec, ProtocolPtr protocol,
                   std::unique_ptr<Accumulator> acc);

  wire::MethodSpec spec_;
  ProtocolPtr protocol_;
  std::unique_ptr<Accumulator> acc_;
};

/// The collector daemon loop: reads length-prefixed frames from `in` until
/// a clean EOF, folds each into `session`, then writes the session's
/// length-prefixed sketch frame to `out`. Any frame error aborts the loop
/// with that error (and writes nothing), so a partial stream can never
/// masquerade as a completed shard.
Status ServeStream(std::istream& in, std::ostream& out,
                   CollectorSession* session);

}  // namespace numdist::serve
