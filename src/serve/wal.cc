#include "serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"

namespace numdist::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal("wal: " + what + " failed (" +
                          std::strerror(errno) + ")");
}

Status WriteAllFd(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t wrote = write(fd, data.data() + off, data.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    off += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

// Reads exactly `len` bytes unless EOF intervenes; returns bytes read.
Result<size_t> ReadUpTo(int fd, char* dst, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t got = read(fd, dst + off, len - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (got == 0) break;
    off += static_cast<size_t>(got);
  }
  return off;
}

void AppendHeader(std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(kWalMagic);
  writer.PutU16(kWalVersion);
  writer.PutU16(0);
}

// Record = u32 body length, u32 CRC-32C(body), body.
void AppendRecord(std::string_view body, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU32(Crc32c(body));
  writer.PutBytes(body.data(), body.size());
}

std::string CheckpointBody(const std::vector<std::string>& sketches) {
  std::string body;
  ByteWriter writer(&body);
  writer.PutU8(static_cast<uint8_t>(WalRecordType::kCheckpoint));
  writer.PutU32(static_cast<uint32_t>(sketches.size()));
  for (const std::string& sketch : sketches) {
    writer.PutU32(static_cast<uint32_t>(sketch.size()));
    writer.PutBytes(sketch.data(), sketch.size());
  }
  return body;
}

// The torn-tail taxonomy: truncation and checksum failures are what a
// crashed write leaves behind, so they end replay with the prefix state
// instead of failing it.
Status TornTail(uint64_t offset, const std::string& why) {
  return Status::OutOfRange("wal: torn tail at byte " +
                            std::to_string(offset) + ": " + why);
}

Status DecodeCheckpointBody(std::string_view payload,
                            std::vector<std::string>* sketches) {
  ByteReader in(payload);
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t count, in.U32());
  sketches->clear();
  sketches->reserve(std::min<size_t>(count, in.remaining() / 4));
  for (uint32_t i = 0; i < count; ++i) {
    NUMDIST_ASSIGN_OR_RETURN(const uint32_t len, in.U32());
    if (len > in.remaining()) {
      return Status::InvalidArgument(
          "wal: checkpoint sketch length exceeds the record payload");
    }
    std::string sketch(len, '\0');
    NUMDIST_RETURN_NOT_OK(in.Bytes(sketch.data(), len));
    sketches->push_back(std::move(sketch));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        "wal: trailing byte(s) after checkpoint payload");
  }
  return Status::OK();
}

}  // namespace

Result<WalReplayStats> ReplayWal(const std::string& path,
                                 const WalConsumer& consumer) {
  WalReplayStats stats;
  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no log yet: empty history
    return Errno("open '" + path + "'");
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { close(fd); }
  } closer{fd};

  char header[kWalHeaderBytes];
  NUMDIST_ASSIGN_OR_RETURN(const size_t header_got,
                           ReadUpTo(fd, header, sizeof(header)));
  if (header_got == 0) return stats;  // empty file: empty history
  if (header_got < sizeof(header)) {
    stats.tail = TornTail(0, "log shorter than the file header");
    return stats;
  }
  {
    ByteReader in(std::string_view(header, sizeof(header)));
    const uint32_t magic = in.U32().ValueOrDie();
    const uint16_t version = in.U16().ValueOrDie();
    if (magic != kWalMagic) {
      return Status::InvalidArgument(
          "wal: bad magic in '" + path + "' (not a numdist WAL)");
    }
    if (version != kWalVersion) {
      return Status::FailedPrecondition(
          "wal: unsupported WAL version " + std::to_string(version) +
          " (this build reads version " + std::to_string(kWalVersion) + ")");
    }
  }
  stats.clean_bytes = kWalHeaderBytes;

  std::string body;
  std::vector<std::string> sketches;
  for (;;) {
    char record_header[8];
    NUMDIST_ASSIGN_OR_RETURN(const size_t got,
                             ReadUpTo(fd, record_header, sizeof(record_header)));
    if (got == 0) break;  // clean record boundary
    if (got < sizeof(record_header)) {
      stats.tail = TornTail(stats.clean_bytes, "record header cut short");
      return stats;
    }
    ByteReader in(std::string_view(record_header, sizeof(record_header)));
    const uint32_t len = in.U32().ValueOrDie();
    const uint32_t crc = in.U32().ValueOrDie();
    if (len == 0) {
      // A zero length with a zero CRC is exactly what a zero-filled
      // (preallocated) tail reads as; classify it as torn, not as a
      // record.
      stats.tail = TornTail(stats.clean_bytes, "empty record body");
      return stats;
    }
    if (len > kMaxWalRecordBytes) {
      stats.tail = TornTail(stats.clean_bytes,
                            "record length " + std::to_string(len) +
                                " exceeds the record ceiling");
      return stats;
    }
    body.resize(len);
    NUMDIST_ASSIGN_OR_RETURN(const size_t body_got,
                             ReadUpTo(fd, body.data(), len));
    if (body_got < len) {
      stats.tail = TornTail(stats.clean_bytes, "record body cut short");
      return stats;
    }
    if (Crc32c(body) != crc) {
      stats.tail = TornTail(stats.clean_bytes, "record CRC mismatch");
      return stats;
    }
    // From here the record is intact: malformed content is corruption a
    // torn write cannot explain, and therefore a hard error.
    const auto type = static_cast<WalRecordType>(
        static_cast<uint8_t>(body[0]));
    const std::string_view payload(body.data() + 1, body.size() - 1);
    switch (type) {
      case WalRecordType::kFrame:
        if (consumer.on_frame) {
          NUMDIST_RETURN_NOT_OK(consumer.on_frame(payload));
        }
        ++stats.frames;
        break;
      case WalRecordType::kCheckpoint:
        NUMDIST_RETURN_NOT_OK(DecodeCheckpointBody(payload, &sketches));
        if (consumer.on_checkpoint) {
          NUMDIST_RETURN_NOT_OK(consumer.on_checkpoint(sketches));
        }
        ++stats.checkpoints;
        break;
      default:
        return Status::InvalidArgument(
            "wal: unknown record type " +
            std::to_string(static_cast<int>(type)) + " at byte " +
            std::to_string(stats.clean_bytes));
    }
    stats.clean_bytes += sizeof(record_header) + len;
  }
  return stats;
}

Result<WalWriter> WalWriter::Open(const std::string& path, uint64_t resume_at,
                                  const WalOptions& options) {
  const int fd = open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open '" + path + "'");
  uint64_t bytes = 0;
  if (resume_at < kWalHeaderBytes) {
    // Fresh (or unreadably short) log: rewrite from scratch.
    if (ftruncate(fd, 0) != 0) {
      close(fd);
      return Errno("ftruncate '" + path + "'");
    }
    std::string header;
    AppendHeader(&header);
    const Status wrote = WriteAllFd(fd, header);
    if (!wrote.ok()) {
      close(fd);
      return wrote;
    }
    bytes = kWalHeaderBytes;
  } else {
    // Resume after the replayed clean prefix; the torn tail (if any) is
    // discarded here so a crashed write can never precede fresh records.
    if (ftruncate(fd, static_cast<off_t>(resume_at)) != 0) {
      close(fd);
      return Errno("ftruncate '" + path + "'");
    }
    if (lseek(fd, 0, SEEK_END) < 0) {
      close(fd);
      return Errno("lseek '" + path + "'");
    }
    bytes = resume_at;
  }
  return WalWriter(fd, path, bytes, options);
}

WalWriter::WalWriter(int fd, std::string path, uint64_t bytes,
                     WalOptions options)
    : fd_(fd), path_(std::move(path)), bytes_(bytes), options_(options) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) close(fd_);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      bytes_(other.bytes_),
      options_(other.options_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    bytes_ = other.bytes_;
    options_ = other.options_;
  }
  return *this;
}

Status WalWriter::AppendFrame(std::string_view frame) {
  std::string record;
  record.reserve(8 + 1 + frame.size());
  std::string body;
  body.reserve(1 + frame.size());
  ByteWriter(&body).PutU8(static_cast<uint8_t>(WalRecordType::kFrame));
  body.append(frame);
  AppendRecord(body, &record);
  NUMDIST_RETURN_NOT_OK(WriteAllFd(fd_, record));
  bytes_ += record.size();
  if (options_.sync_each_record) return Sync();
  return Status::OK();
}

Status WalWriter::Compact(const std::vector<std::string>& sketches) {
  const std::string tmp_path = path_ + ".compact.tmp";
  const int tmp_fd =
      open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) return Errno("open '" + tmp_path + "'");
  std::string log;
  AppendHeader(&log);
  AppendRecord(CheckpointBody(sketches), &log);
  Status st = WriteAllFd(tmp_fd, log);
  // The rename is what makes compaction atomic: a crash before it leaves
  // the old log intact, a crash after it leaves the checkpoint-only log.
  // fsync the temp file first so the rename never publishes empty bytes.
  if (st.ok() && fsync(tmp_fd) != 0) st = Errno("fsync '" + tmp_path + "'");
  if (close(tmp_fd) != 0 && st.ok()) st = Errno("close '" + tmp_path + "'");
  if (!st.ok()) {
    unlink(tmp_path.c_str());
    return st;
  }
  if (rename(tmp_path.c_str(), path_.c_str()) != 0) {
    unlink(tmp_path.c_str());
    return Errno("rename '" + tmp_path + "'");
  }
  const int new_fd = open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (new_fd < 0) return Errno("reopen '" + path_ + "'");
  if (lseek(new_fd, 0, SEEK_END) < 0) {
    close(new_fd);
    return Errno("lseek '" + path_ + "'");
  }
  if (fd_ >= 0) close(fd_);
  fd_ = new_fd;
  bytes_ = log.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fsync(fd_) != 0) return Errno("fsync '" + path_ + "'");
  return Status::OK();
}

}  // namespace numdist::serve
