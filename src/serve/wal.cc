#include "serve/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"

namespace numdist::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal("wal: " + what + " failed (" +
                          std::strerror(errno) + ")");
}

Status WriteAllFd(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t wrote = write(fd, data.data() + off, data.size() - off);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    off += static_cast<size_t>(wrote);
  }
  return Status::OK();
}

// Reads exactly `len` bytes unless EOF intervenes; returns bytes read.
Result<size_t> ReadUpTo(int fd, char* dst, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t got = read(fd, dst + off, len - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (got == 0) break;
    off += static_cast<size_t>(got);
  }
  return off;
}

void AppendHeader(std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(kWalMagic);
  writer.PutU16(kWalVersion);
  writer.PutU16(0);
}

// Record = u32 body length, u32 CRC-32C(body), body.
void AppendRecord(std::string_view body, std::string* out) {
  ByteWriter writer(out);
  writer.PutU32(static_cast<uint32_t>(body.size()));
  writer.PutU32(Crc32c(body));
  writer.PutBytes(body.data(), body.size());
}

std::string CheckpointBody(const std::vector<std::string>& sketches) {
  std::string body;
  ByteWriter writer(&body);
  writer.PutU8(static_cast<uint8_t>(WalRecordType::kCheckpoint));
  writer.PutU32(static_cast<uint32_t>(sketches.size()));
  for (const std::string& sketch : sketches) {
    writer.PutU32(static_cast<uint32_t>(sketch.size()));
    writer.PutBytes(sketch.data(), sketch.size());
  }
  return body;
}

std::string SeqCheckpointBody(const std::vector<WalSeqEntry>& entries) {
  std::string body;
  ByteWriter writer(&body);
  writer.PutU8(static_cast<uint8_t>(WalRecordType::kSeqCheckpoint));
  writer.PutU32(static_cast<uint32_t>(entries.size()));
  for (const WalSeqEntry& entry : entries) {
    writer.PutU64(entry.epoch);
    writer.PutU64(entry.floor);
    writer.PutU32(static_cast<uint32_t>(entry.sparse.size()));
    for (uint64_t seq : entry.sparse) writer.PutU64(seq);
  }
  return body;
}

// The torn-tail taxonomy: truncation and checksum failures are what a
// crashed write leaves behind, so they end replay with the prefix state
// instead of failing it.
Status TornTail(uint64_t offset, const std::string& why) {
  return Status::OutOfRange("wal: torn tail at byte " +
                            std::to_string(offset) + ": " + why);
}

Status DecodeCheckpointBody(std::string_view payload,
                            std::vector<std::string>* sketches) {
  ByteReader in(payload);
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t count, in.U32());
  sketches->clear();
  sketches->reserve(std::min<size_t>(count, in.remaining() / 4));
  for (uint32_t i = 0; i < count; ++i) {
    NUMDIST_ASSIGN_OR_RETURN(const uint32_t len, in.U32());
    if (len > in.remaining()) {
      return Status::InvalidArgument(
          "wal: checkpoint sketch length exceeds the record payload");
    }
    std::string sketch(len, '\0');
    NUMDIST_RETURN_NOT_OK(in.Bytes(sketch.data(), len));
    sketches->push_back(std::move(sketch));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        "wal: trailing byte(s) after checkpoint payload");
  }
  return Status::OK();
}

Status DecodeSeqCheckpointBody(std::string_view payload,
                               std::vector<WalSeqEntry>* entries) {
  ByteReader in(payload);
  NUMDIST_ASSIGN_OR_RETURN(const uint32_t count, in.U32());
  entries->clear();
  // Each entry needs at least its epoch/floor/count fields (20 bytes);
  // bound before reserving so a hostile count cannot drive allocation.
  if (count > in.remaining() / 20) {
    return Status::InvalidArgument(
        "wal: seq checkpoint entry count exceeds the record payload");
  }
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WalSeqEntry entry;
    NUMDIST_ASSIGN_OR_RETURN(entry.epoch, in.U64());
    NUMDIST_ASSIGN_OR_RETURN(entry.floor, in.U64());
    NUMDIST_ASSIGN_OR_RETURN(const uint32_t sparse_count, in.U32());
    if (sparse_count > in.remaining() / sizeof(uint64_t)) {
      return Status::InvalidArgument(
          "wal: seq checkpoint sparse count exceeds the record payload");
    }
    entry.sparse.reserve(sparse_count);
    for (uint32_t j = 0; j < sparse_count; ++j) {
      NUMDIST_ASSIGN_OR_RETURN(const uint64_t seq, in.U64());
      entry.sparse.push_back(seq);
    }
    entries->push_back(std::move(entry));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        "wal: trailing byte(s) after seq checkpoint payload");
  }
  return Status::OK();
}

}  // namespace

Result<WalReplayStats> ReplayWal(const std::string& path,
                                 const WalConsumer& consumer) {
  WalReplayStats stats;
  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no log yet: empty history
    return Errno("open '" + path + "'");
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { close(fd); }
  } closer{fd};

  char header[kWalHeaderBytes];
  NUMDIST_ASSIGN_OR_RETURN(const size_t header_got,
                           ReadUpTo(fd, header, sizeof(header)));
  if (header_got == 0) return stats;  // empty file: empty history
  if (header_got < sizeof(header)) {
    stats.tail = TornTail(0, "log shorter than the file header");
    return stats;
  }
  {
    ByteReader in(std::string_view(header, sizeof(header)));
    const uint32_t magic = in.U32().ValueOrDie();
    const uint16_t version = in.U16().ValueOrDie();
    if (magic != kWalMagic) {
      return Status::InvalidArgument(
          "wal: bad magic in '" + path + "' (not a numdist WAL)");
    }
    if (version != kWalVersion) {
      return Status::FailedPrecondition(
          "wal: unsupported WAL version " + std::to_string(version) +
          " (this build reads version " + std::to_string(kWalVersion) + ")");
    }
  }
  stats.clean_bytes = kWalHeaderBytes;

  std::string body;
  std::vector<std::string> sketches;
  std::vector<WalSeqEntry> seq_entries;
  for (;;) {
    char record_header[8];
    NUMDIST_ASSIGN_OR_RETURN(const size_t got,
                             ReadUpTo(fd, record_header, sizeof(record_header)));
    if (got == 0) break;  // clean record boundary
    if (got < sizeof(record_header)) {
      stats.tail = TornTail(stats.clean_bytes, "record header cut short");
      return stats;
    }
    ByteReader in(std::string_view(record_header, sizeof(record_header)));
    const uint32_t len = in.U32().ValueOrDie();
    const uint32_t crc = in.U32().ValueOrDie();
    if (len == 0) {
      // A zero length with a zero CRC is exactly what a zero-filled
      // (preallocated) tail reads as; classify it as torn, not as a
      // record.
      stats.tail = TornTail(stats.clean_bytes, "empty record body");
      return stats;
    }
    if (len > kMaxWalRecordBytes) {
      stats.tail = TornTail(stats.clean_bytes,
                            "record length " + std::to_string(len) +
                                " exceeds the record ceiling");
      return stats;
    }
    body.resize(len);
    NUMDIST_ASSIGN_OR_RETURN(const size_t body_got,
                             ReadUpTo(fd, body.data(), len));
    if (body_got < len) {
      stats.tail = TornTail(stats.clean_bytes, "record body cut short");
      return stats;
    }
    if (Crc32c(body) != crc) {
      stats.tail = TornTail(stats.clean_bytes, "record CRC mismatch");
      return stats;
    }
    // From here the record is intact: malformed content is corruption a
    // torn write cannot explain, and therefore a hard error.
    const auto type = static_cast<WalRecordType>(
        static_cast<uint8_t>(body[0]));
    const std::string_view payload(body.data() + 1, body.size() - 1);
    switch (type) {
      case WalRecordType::kFrame:
        if (consumer.on_frame) {
          NUMDIST_RETURN_NOT_OK(consumer.on_frame(payload));
        }
        ++stats.frames;
        break;
      case WalRecordType::kCheckpoint:
        NUMDIST_RETURN_NOT_OK(DecodeCheckpointBody(payload, &sketches));
        if (consumer.on_checkpoint) {
          NUMDIST_RETURN_NOT_OK(consumer.on_checkpoint(sketches));
        }
        ++stats.checkpoints;
        break;
      case WalRecordType::kSeqCheckpoint:
        NUMDIST_RETURN_NOT_OK(DecodeSeqCheckpointBody(payload, &seq_entries));
        if (consumer.on_seq_checkpoint) {
          NUMDIST_RETURN_NOT_OK(consumer.on_seq_checkpoint(seq_entries));
        }
        ++stats.seq_checkpoints;
        break;
      default:
        return Status::InvalidArgument(
            "wal: unknown record type " +
            std::to_string(static_cast<int>(type)) + " at byte " +
            std::to_string(stats.clean_bytes));
    }
    stats.clean_bytes += sizeof(record_header) + len;
  }
  return stats;
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir '" + dir + "'");
  Status st = Status::OK();
  // Some filesystems refuse to fsync a directory fd; a crashed rename on
  // those is as durable as it gets, so EINVAL is not an error here.
  if (fsync(fd) != 0 && errno != EINVAL) st = Errno("fsync dir '" + dir + "'");
  close(fd);
  return st;
}

Result<WalWriter> WalWriter::Open(const std::string& path, uint64_t resume_at,
                                  const WalOptions& options) {
  const int fd = open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open '" + path + "'");
  uint64_t bytes = 0;
  if (resume_at < kWalHeaderBytes) {
    // Fresh (or unreadably short) log: rewrite from scratch.
    if (ftruncate(fd, 0) != 0) {
      close(fd);
      return Errno("ftruncate '" + path + "'");
    }
    std::string header;
    AppendHeader(&header);
    const Status wrote = WriteAllFd(fd, header);
    if (!wrote.ok()) {
      close(fd);
      return wrote;
    }
    bytes = kWalHeaderBytes;
  } else {
    // Resume after the replayed clean prefix; the torn tail (if any) is
    // discarded here so a crashed write can never precede fresh records.
    if (ftruncate(fd, static_cast<off_t>(resume_at)) != 0) {
      close(fd);
      return Errno("ftruncate '" + path + "'");
    }
    if (lseek(fd, 0, SEEK_END) < 0) {
      close(fd);
      return Errno("lseek '" + path + "'");
    }
    bytes = resume_at;
  }
  return WalWriter(fd, path, bytes, options);
}

WalWriter::WalWriter(int fd, std::string path, uint64_t bytes,
                     WalOptions options)
    : fd_(fd), path_(std::move(path)), bytes_(bytes), options_(options) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) close(fd_);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      bytes_(other.bytes_),
      options_(other.options_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    bytes_ = other.bytes_;
    options_ = other.options_;
  }
  return *this;
}

Status WalWriter::AppendFrame(std::string_view frame) {
  std::string record;
  record.reserve(8 + 1 + frame.size());
  std::string body;
  body.reserve(1 + frame.size());
  ByteWriter(&body).PutU8(static_cast<uint8_t>(WalRecordType::kFrame));
  body.append(frame);
  AppendRecord(body, &record);
  NUMDIST_RETURN_NOT_OK(WriteAllFd(fd_, record));
  bytes_ += record.size();
  if (options_.sync_each_record) return Sync();
  return Status::OK();
}

Status WalWriter::Compact(const std::vector<std::string>& sketches) {
  return Compact(sketches, {});
}

Status WalWriter::Compact(const std::vector<std::string>& sketches,
                          const std::vector<WalSeqEntry>& seqs) {
  const std::string tmp_path = path_ + ".compact.tmp";
  const int tmp_fd =
      open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) return Errno("open '" + tmp_path + "'");
  std::string log;
  AppendHeader(&log);
  AppendRecord(CheckpointBody(sketches), &log);
  if (!seqs.empty()) AppendRecord(SeqCheckpointBody(seqs), &log);
  Status st = WriteAllFd(tmp_fd, log);
  // The rename is what makes compaction atomic: a crash before it leaves
  // the old log intact, a crash after it leaves the checkpoint-only log.
  // fsync the temp file first so the rename never publishes empty bytes.
  if (st.ok() && fsync(tmp_fd) != 0) st = Errno("fsync '" + tmp_path + "'");
  if (close(tmp_fd) != 0 && st.ok()) st = Errno("close '" + tmp_path + "'");
  if (!st.ok()) {
    unlink(tmp_path.c_str());
    return st;
  }
  if (rename(tmp_path.c_str(), path_.c_str()) != 0) {
    unlink(tmp_path.c_str());
    return Errno("rename '" + tmp_path + "'");
  }
  // File contents are durable (temp-file fsync); the rename's dirent is
  // not until the directory itself is synced.
  NUMDIST_RETURN_NOT_OK(SyncParentDir(path_));
  const int new_fd = open(path_.c_str(), O_RDWR | O_CLOEXEC);
  if (new_fd < 0) return Errno("reopen '" + path_ + "'");
  if (lseek(new_fd, 0, SEEK_END) < 0) {
    close(new_fd);
    return Errno("lseek '" + path_ + "'");
  }
  if (fd_ >= 0) close(fd_);
  fd_ = new_fd;
  bytes_ = log.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fsync(fd_) != 0) return Errno("fsync '" + path_ + "'");
  return Status::OK();
}

namespace {

// Segment files are named wal-00000001.ndwl, wal-00000002.ndwl, ...;
// numbering is 1-based and zero-padded so lexicographic order matches
// numeric order for the first hundred million segments.
std::string SegmentFileName(uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.ndwl",
                static_cast<unsigned long long>(seq));
  return name;
}

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + SegmentFileName(seq);
}

// Parses "wal-<digits>.ndwl" → segment number; 0 for anything else
// (segment numbers are 1-based, so 0 doubles as "not a segment").
uint64_t ParseSegmentName(const std::string& name) {
  if (name.rfind("wal-", 0) != 0) return 0;
  if (name.size() < 10 || name.substr(name.size() - 5) != ".ndwl") return 0;
  uint64_t seq = 0;
  for (size_t i = 4; i < name.size() - 5; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return 0;
    if (seq > (UINT64_MAX - 9) / 10) return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

// Lists the segment numbers present in `dir`, ascending. Files that do
// not match the segment naming (including .tmp leftovers from a crashed
// compaction) are ignored.
Result<std::vector<uint64_t>> ListSegments(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir '" + dir + "'");
  std::vector<uint64_t> seqs;
  for (;;) {
    errno = 0;
    const dirent* entry = readdir(d);
    if (entry == nullptr) {
      if (errno != 0) {
        const Status st = Errno("readdir '" + dir + "'");
        closedir(d);
        return st;
      }
      break;
    }
    const uint64_t seq = ParseSegmentName(entry->d_name);
    if (seq > 0) seqs.push_back(seq);
  }
  closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

Result<WalLog> WalLog::Open(const std::string& path, const WalOptions& options,
                            const WalConsumer& consumer) {
  WalLog log;
  log.path_ = path;
  log.options_ = options;
  if (options.segment_bytes == 0) {
    // Single-file layout: replay, then resume at the clean prefix.
    NUMDIST_ASSIGN_OR_RETURN(log.recovery_, ReplayWal(path, consumer));
    NUMDIST_ASSIGN_OR_RETURN(
        WalWriter writer,
        WalWriter::Open(path, log.recovery_.clean_bytes, options));
    log.writer_.emplace(std::move(writer));
    return log;
  }
  // Segmented layout: `path` is a directory of segment files.
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir '" + path + "'");
  }
  struct stat sb;
  if (stat(path.c_str(), &sb) != 0) return Errno("stat '" + path + "'");
  if (!S_ISDIR(sb.st_mode)) {
    return Status::InvalidArgument(
        "wal: segmented mode needs a directory, but '" + path +
        "' is a file (a single-file log cannot be reopened with "
        "--wal-segment-bytes)");
  }
  NUMDIST_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListSegments(path));
  if (seqs.empty()) {
    // Fresh log: create segment 1 and persist its dirent.
    log.active_seq_ = 1;
    log.segments_ = 1;
    NUMDIST_ASSIGN_OR_RETURN(
        WalWriter writer, WalWriter::Open(SegmentPath(path, 1), 0, options));
    log.writer_.emplace(std::move(writer));
    NUMDIST_RETURN_NOT_OK(SyncParentDir(SegmentPath(path, 1)));
    return log;
  }
  // GC deletes oldest-first and the writer appends highest-last, so the
  // live set must be one contiguous run; a hole means lost records.
  for (size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] != seqs[i - 1] + 1) {
      return Status::InvalidArgument(
          "wal: segment gap in '" + path + "': " + SegmentFileName(seqs[i - 1]) +
          " is followed by " + SegmentFileName(seqs[i]));
    }
  }
  for (size_t i = 0; i < seqs.size(); ++i) {
    const std::string seg_path = SegmentPath(path, seqs[i]);
    NUMDIST_ASSIGN_OR_RETURN(const WalReplayStats stats,
                             ReplayWal(seg_path, consumer));
    log.recovery_.frames += stats.frames;
    log.recovery_.checkpoints += stats.checkpoints;
    log.recovery_.seq_checkpoints += stats.seq_checkpoints;
    log.recovery_.clean_bytes = stats.clean_bytes;
    if (!stats.tail.ok() && i + 1 < seqs.size()) {
      // Only the final segment can end mid-write: sealed segments were
      // fsynced before the next was opened, so a torn record here is
      // corruption, not a crash artifact.
      return Status::InvalidArgument(
          "wal: torn record in sealed segment '" + seg_path +
          "': " + stats.tail.message());
    }
    log.recovery_.tail = stats.tail;
  }
  log.recovery_.segments = seqs.size();
  log.active_seq_ = seqs.back();
  log.segments_ = seqs.size();
  NUMDIST_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Open(SegmentPath(path, seqs.back()),
                      log.recovery_.clean_bytes, options));
  log.writer_.emplace(std::move(writer));
  return log;
}

Status WalLog::AppendFrame(std::string_view frame) {
  NUMDIST_RETURN_NOT_OK(writer_->AppendFrame(frame));
  if (options_.segment_bytes == 0 ||
      writer_->bytes() < options_.segment_bytes) {
    return Status::OK();
  }
  // Seal the active segment (fsync so a sealed segment can never be torn)
  // and roll to the next. The new header's dirent is synced so replay
  // after power loss sees the same contiguous run the writer left.
  NUMDIST_RETURN_NOT_OK(writer_->Sync());
  const std::string next_path = SegmentPath(path_, active_seq_ + 1);
  NUMDIST_ASSIGN_OR_RETURN(WalWriter writer,
                           WalWriter::Open(next_path, 0, options_));
  writer_.emplace(std::move(writer));
  ++active_seq_;
  ++segments_;
  return SyncParentDir(next_path);
}

Status WalLog::Compact(const std::vector<std::string>& sketches,
                       const std::vector<WalSeqEntry>& seqs) {
  if (options_.segment_bytes == 0) return writer_->Compact(sketches, seqs);
  // Segmented compaction: publish the checkpoint as a fresh segment
  // (temp file + fsync + rename + dir sync), THEN garbage-collect the
  // older segments oldest-first. A crash mid-GC leaves a contiguous
  // suffix whose replay still starts at the checkpoint.
  const uint64_t new_seq = active_seq_ + 1;
  const std::string final_path = SegmentPath(path_, new_seq);
  const std::string tmp_path = final_path + ".tmp";
  const int tmp_fd =
      open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp_fd < 0) return Errno("open '" + tmp_path + "'");
  std::string log;
  AppendHeader(&log);
  AppendRecord(CheckpointBody(sketches), &log);
  if (!seqs.empty()) AppendRecord(SeqCheckpointBody(seqs), &log);
  Status st = WriteAllFd(tmp_fd, log);
  if (st.ok() && fsync(tmp_fd) != 0) st = Errno("fsync '" + tmp_path + "'");
  if (close(tmp_fd) != 0 && st.ok()) st = Errno("close '" + tmp_path + "'");
  if (!st.ok()) {
    unlink(tmp_path.c_str());
    return st;
  }
  if (rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    unlink(tmp_path.c_str());
    return Errno("rename '" + tmp_path + "'");
  }
  NUMDIST_RETURN_NOT_OK(SyncParentDir(final_path));
  // The checkpoint segment is durable; everything before it is garbage.
  for (uint64_t seq = new_seq - segments_; seq < new_seq; ++seq) {
    const std::string old_path = SegmentPath(path_, seq);
    if (unlink(old_path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink '" + old_path + "'");
    }
  }
  NUMDIST_RETURN_NOT_OK(SyncParentDir(final_path));
  NUMDIST_ASSIGN_OR_RETURN(WalWriter writer,
                           WalWriter::Open(final_path, log.size(), options_));
  writer_.emplace(std::move(writer));
  active_seq_ = new_seq;
  segments_ = 1;
  return Status::OK();
}

Status WalLog::Sync() { return writer_->Sync(); }

}  // namespace numdist::serve
