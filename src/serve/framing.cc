#include "serve/framing.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/bytes.h"

namespace numdist::serve {

Status WriteFrame(std::ostream& out, std::string_view frame,
                  size_t max_bytes) {
  // The prefix is a u32, so UINT32_MAX caps every frame no matter how far
  // a caller raises max_bytes — otherwise the cast below would silently
  // truncate the length and desynchronize the stream.
  const size_t limit = std::min<size_t>(max_bytes, UINT32_MAX);
  if (frame.size() > limit) {
    return Status::InvalidArgument(
        "framing: frame of " + std::to_string(frame.size()) +
        " bytes exceeds the " + std::to_string(limit) + "-byte limit");
  }
  std::string prefix;
  ByteWriter(&prefix).PutU32(static_cast<uint32_t>(frame.size()));
  out.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out) {
    return Status::Internal("framing: stream write failed");
  }
  return Status::OK();
}

Status ReadFrame(std::istream& in, std::string* frame, bool* eof,
                 size_t max_bytes) {
  frame->clear();
  *eof = false;
  char prefix[4];
  in.read(prefix, sizeof(prefix));
  if (in.gcount() == 0 && in.eof()) {
    *eof = true;  // clean end of stream between frames
    return Status::OK();
  }
  if (static_cast<size_t>(in.gcount()) < sizeof(prefix)) {
    return Status::OutOfRange(
        "framing: stream ended inside a length prefix (" +
        std::to_string(in.gcount()) + " of 4 bytes)");
  }
  const uint32_t len =
      ByteReader(std::string_view(prefix, sizeof(prefix))).U32().value();
  if (len > max_bytes) {
    return Status::InvalidArgument(
        "framing: length prefix of " + std::to_string(len) +
        " bytes exceeds the " + std::to_string(max_bytes) + "-byte limit");
  }
  frame->resize(len);
  if (len > 0) {
    in.read(frame->data(), static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) < len) {
      return Status::OutOfRange(
          "framing: stream ended inside a frame (" +
          std::to_string(in.gcount()) + " of " + std::to_string(len) +
          " bytes)");
    }
  }
  return Status::OK();
}

}  // namespace numdist::serve
