#include "serve/framing.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/bytes.h"

namespace numdist::serve {

Status WriteFrame(std::ostream& out, std::string_view frame,
                  size_t max_bytes) {
  // The prefix is a u32, so UINT32_MAX caps every frame no matter how far
  // a caller raises max_bytes — otherwise the cast below would silently
  // truncate the length and desynchronize the stream.
  const size_t limit = std::min<size_t>(max_bytes, UINT32_MAX);
  if (frame.size() > limit) {
    return Status::InvalidArgument(
        "framing: frame of " + std::to_string(frame.size()) +
        " bytes exceeds the " + std::to_string(limit) + "-byte limit");
  }
  // Prefix and body go out as ONE buffered write: half the stream-level
  // write calls, and no observable state where the prefix is flushed but
  // the body is not (a reader polling the stream can never see a frame
  // split between the two).
  std::string buffered;
  buffered.reserve(sizeof(uint32_t) + frame.size());
  ByteWriter(&buffered).PutU32(static_cast<uint32_t>(frame.size()));
  buffered.append(frame);
  out.write(buffered.data(), static_cast<std::streamsize>(buffered.size()));
  if (!out) {
    return Status::Internal("framing: stream write failed");
  }
  return Status::OK();
}

void AppendFramePrefix(size_t frame_len, std::string* out) {
  ByteWriter(out).PutU32(static_cast<uint32_t>(frame_len));
}

Status ReadFrame(std::istream& in, std::string* frame, bool* eof,
                 size_t max_bytes) {
  frame->clear();
  *eof = false;
  char prefix[4];
  in.read(prefix, sizeof(prefix));
  if (in.gcount() == 0 && in.eof()) {
    *eof = true;  // clean end of stream between frames
    return Status::OK();
  }
  if (static_cast<size_t>(in.gcount()) < sizeof(prefix)) {
    return Status::OutOfRange(
        "framing: stream ended inside a length prefix (" +
        std::to_string(in.gcount()) + " of 4 bytes)");
  }
  const uint32_t len =
      ByteReader(std::string_view(prefix, sizeof(prefix))).U32().value();
  if (len > max_bytes) {
    return Status::InvalidArgument(
        "framing: length prefix of " + std::to_string(len) +
        " bytes exceeds the " + std::to_string(max_bytes) + "-byte limit");
  }
  frame->resize(len);
  if (len > 0) {
    in.read(frame->data(), static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) < len) {
      return Status::OutOfRange(
          "framing: stream ended inside a frame (" +
          std::to_string(in.gcount()) + " of " + std::to_string(len) +
          " bytes)");
    }
  }
  return Status::OK();
}

void FrameDecoder::ParsePrefix() {
  if (have_len_ || !error_.ok()) return;
  if (buffered_bytes() < sizeof(uint32_t)) return;
  const uint32_t len =
      ByteReader(std::string_view(buf_.data() + pos_, sizeof(uint32_t)))
          .U32()
          .value();
  if (len > max_bytes_) {
    // Same wording as ReadFrame: the two decoders must reject identically.
    error_ = Status::InvalidArgument(
        "framing: length prefix of " + std::to_string(len) +
        " bytes exceeds the " + std::to_string(max_bytes_) + "-byte limit");
    return;
  }
  pos_ += sizeof(uint32_t);
  have_len_ = true;
  len_ = len;
}

Status FrameDecoder::Feed(std::string_view bytes) {
  if (!error_.ok()) return error_;
  buf_.append(bytes.data(), bytes.size());
  ParsePrefix();
  return error_;
}

bool FrameDecoder::Next(std::string* frame) {
  ParsePrefix();
  if (!error_.ok() || !have_len_ || buffered_bytes() < len_) return false;
  frame->assign(buf_, pos_, len_);
  pos_ += len_;
  have_len_ = false;
  // Reclaim consumed bytes once they dominate the buffer, so a long-lived
  // connection's memory tracks its unconsumed backlog, not its history.
  if (pos_ > 4096 && pos_ >= buf_.size() - pos_) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  ParsePrefix();  // the next frame's prefix may already be buffered
  return true;
}

Status FrameDecoder::AtEnd() const {
  if (!error_.ok()) return error_;
  if (have_len_) {
    return Status::OutOfRange(
        "framing: stream ended inside a frame (" +
        std::to_string(buffered_bytes()) + " of " + std::to_string(len_) +
        " bytes)");
  }
  if (buffered_bytes() > 0) {
    return Status::OutOfRange(
        "framing: stream ended inside a length prefix (" +
        std::to_string(buffered_bytes()) + " of 4 bytes)");
  }
  return Status::OK();
}

}  // namespace numdist::serve
