// Write-ahead snapshot log: the collector's crash-recovery substrate.
//
// A collector with a WAL attached appends every ACCEPTED report/sketch
// frame to an append-only log before acknowledging it, and periodically
// compacts the log down to a checkpoint record holding its per-tenant
// sketch frames. A collector killed at ANY byte offset — SIGKILL
// mid-write included — replays the log's clean prefix on restart and
// resumes with the exact pre-crash AccumulatorState: frames are absorbed
// in log order and accumulator arithmetic is exact integers, so the
// restarted aggregate is byte-identical to an uninterrupted run over the
// same frames (tests/wal_process_test.cc proves this across real
// processes).
//
// File layout (all integers little-endian; docs/WIRE_FORMAT.md has the
// byte-level spec):
//
//   header   u32 magic "NDWL", u16 version (1), u16 reserved (0)
//   record   u32 body length, u32 CRC-32C of body, body
//   body     u8 record type, payload
//     type 1 (frame)       payload = one wire frame (report or sketch)
//     type 2 (checkpoint)  payload = u32 sketch count, then per sketch a
//                          u32 length + that many bytes (one wire sketch
//                          frame per tenant; replay RESETS to this state)
//     type 3 (seq ckpt)    payload = the collector's exactly-once dedup
//                          window (u32 entry count, then per entry a u64
//                          epoch, u64 floor, u32 sparse count, and that
//                          many u64 sequence numbers; replay RESETS the
//                          window to this state)
//
// Segmented mode (WalOptions::segment_bytes > 0): the log is a DIRECTORY
// of size-bounded segment files named wal-00000001.ndwl, wal-00000002.ndwl,
// ... — each an NDWL file as above. The writer seals the active segment
// once it reaches segment_bytes and opens the next; compaction writes the
// checkpoint into a fresh segment, then garbage-collects all older
// segments oldest-first, so a crash at any point leaves a contiguous
// segment suffix. Replay walks segments in ascending order; the torn-tail
// taxonomy applies to the FINAL segment only — a torn record in a sealed
// (non-final) segment is corruption a crash cannot explain, and a gap in
// the segment numbering is a hard error.
//
// Failure model: the log tolerates truncation and bit rot at its tail —
// a record cut short or failing its CRC ends replay with a typed error
// in WalReplayStats::tail, the intact prefix's state is kept, and the
// writer truncates the torn tail before appending (so a crashed write is
// discarded, never replayed as garbage). Corruption that a torn write
// cannot explain (bad file magic, a valid-CRC record with an unknown
// type or malformed checkpoint payload) is a hard replay error instead.
// Without sync_each_record the log survives process death (page cache);
// power-loss durability needs sync_each_record = true.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace numdist::serve {

/// First 4 bytes of every WAL file: "NDWL" on disk.
inline constexpr uint32_t kWalMagic = 0x4C57444E;
inline constexpr uint16_t kWalVersion = 1;
/// Bytes of the file header preceding the first record.
inline constexpr uint64_t kWalHeaderBytes = 8;
/// Per-record body ceiling: a frame record holds at most one
/// kMaxFrameBytes frame, a checkpoint at most a handful of sketches.
/// A larger claimed length is classified as a torn/corrupt record.
inline constexpr uint64_t kMaxWalRecordBytes = 256u << 20;

/// Record discriminator (first body byte). Values are part of the on-disk
/// format: never renumber, only append.
enum class WalRecordType : uint8_t {
  kFrame = 1,       ///< One accepted wire frame, verbatim.
  kCheckpoint = 2,  ///< Full-state snapshot: replay resets, then imports.
  kSeqCheckpoint = 3,  ///< Dedup-window snapshot: replay resets the window.
};

struct WalOptions {
  /// Compact the log (checkpoint + truncate) after this many appended
  /// frame records (0 = only compact when the owner asks, e.g. at drain).
  uint64_t checkpoint_every_frames = 0;
  /// fsync after every record (power-loss durability). Off by default:
  /// surviving process death needs no fsync, only the page cache.
  bool sync_each_record = false;
  /// Segmented mode: > 0 makes the WAL path a DIRECTORY of segment files,
  /// each sealed once it reaches this many bytes (see the header comment).
  /// 0 keeps the original single-file layout.
  uint64_t segment_bytes = 0;
};

/// One client epoch's exactly-once dedup state as checkpointed in a
/// type-3 record: every sequence number <= `floor` has been absorbed,
/// plus the out-of-order `sparse` set above the floor.
struct WalSeqEntry {
  uint64_t epoch = 0;
  uint64_t floor = 0;
  std::vector<uint64_t> sparse;
};

/// What a replay pass found. `tail` is OK when the log ends exactly on a
/// record boundary; otherwise it is the typed torn-tail error (truncation
/// or CRC mismatch) and `clean_bytes` is where the intact prefix ends —
/// the offset WalWriter::Open truncates to before appending.
struct WalReplayStats {
  uint64_t frames = 0;
  uint64_t checkpoints = 0;
  uint64_t seq_checkpoints = 0;
  uint64_t clean_bytes = 0;
  /// Segment files replayed (0 in single-file mode).
  uint64_t segments = 0;
  Status tail = Status::OK();
};

/// Replay callbacks. `on_frame` receives each logged frame verbatim;
/// `on_checkpoint` receives the checkpoint's sketch frames and must RESET
/// the consumer's state to them (not merge — a mid-log checkpoint already
/// contains every earlier frame's contribution); `on_seq_checkpoint`
/// likewise RESETS the consumer's dedup window. A callback error aborts
/// the replay with that error.
struct WalConsumer {
  std::function<Status(std::string_view frame)> on_frame;
  std::function<Status(const std::vector<std::string>& sketches)>
      on_checkpoint;
  std::function<Status(const std::vector<WalSeqEntry>& entries)>
      on_seq_checkpoint;
};

/// Replays the log at `path` through `consumer`. A missing or empty file
/// is an empty log (zero records, OK tail). See WalReplayStats for the
/// torn-tail contract; bad header magic/version and valid-CRC-but-
/// malformed records are hard errors.
Result<WalReplayStats> ReplayWal(const std::string& path,
                                 const WalConsumer& consumer);

/// fsyncs the directory containing `path`, making a just-renamed,
/// -created, or -unlinked entry durable against power loss (file-content
/// fsync alone does not persist the dirent). Filesystems that reject
/// directory fsync (EINVAL) are treated as OK.
Status SyncParentDir(const std::string& path);

/// \brief Appender for one collector's write-ahead log.
class WalWriter {
 public:
  /// Opens `path` for appending at offset `resume_at` — the replay's
  /// clean_bytes — truncating any torn tail past it. A fresh or empty
  /// log (resume_at < header size) is (re)initialized with the file
  /// header. The caller replays BEFORE opening: opening truncates.
  static Result<WalWriter> Open(const std::string& path, uint64_t resume_at,
                                const WalOptions& options = {});
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one accepted wire frame as a frame record.
  Status AppendFrame(std::string_view frame);

  /// Log compaction: atomically replaces the whole log with one
  /// checkpoint record holding `sketches` (written to a temp file,
  /// fsynced, renamed over the log, parent directory fsynced). After
  /// Compact the log replays to exactly the checkpointed state. The
  /// two-argument form also persists the dedup window as a type-3
  /// record (omitted when `seqs` is empty).
  Status Compact(const std::vector<std::string>& sketches);
  Status Compact(const std::vector<std::string>& sketches,
                 const std::vector<WalSeqEntry>& seqs);

  /// fsyncs the log fd (a no-op durability-wise if nothing was written).
  Status Sync();

  /// Current log size in bytes (header + intact records).
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }
  const WalOptions& options() const { return options_; }

 private:
  WalWriter(int fd, std::string path, uint64_t bytes, WalOptions options);

  int fd_ = -1;
  std::string path_;
  uint64_t bytes_ = 0;
  WalOptions options_;
};

/// \brief Mode-dispatching facade over the single-file and segmented WAL
/// layouts: replays existing state through `consumer`, then attaches a
/// writer resumed at the clean prefix. Collectors hold a WalLog and never
/// care which layout is underneath (WalOptions::segment_bytes decides).
class WalLog {
 public:
  /// Replays the log at `path` (a file, or a segment directory when
  /// options.segment_bytes > 0 — created if missing) through `consumer`,
  /// then opens the writer at the replay's clean prefix. Replay findings
  /// are kept in recovery().
  static Result<WalLog> Open(const std::string& path,
                             const WalOptions& options,
                             const WalConsumer& consumer);

  /// Appends one accepted wire frame; in segmented mode, seals the active
  /// segment and opens the next once it reaches segment_bytes.
  Status AppendFrame(std::string_view frame);

  /// Compaction. Single-file: atomic whole-log replacement (see
  /// WalWriter::Compact). Segmented: writes the checkpoint (+ dedup
  /// window) into a FRESH segment, then unlinks all older segments
  /// oldest-first — a crash at any point leaves a contiguous,
  /// replayable segment suffix.
  Status Compact(const std::vector<std::string>& sketches,
                 const std::vector<WalSeqEntry>& seqs = {});

  /// fsyncs the active log file.
  Status Sync();

  /// What replay found when this log was opened.
  const WalReplayStats& recovery() const { return recovery_; }
  /// Bytes in the active file/segment (header + intact records).
  uint64_t bytes() const { return writer_->bytes(); }
  /// Live segment-file count (0 in single-file mode).
  uint64_t segments() const { return segments_; }
  const std::string& path() const { return path_; }
  const WalOptions& options() const { return options_; }

 private:
  WalLog() = default;

  std::string path_;
  WalOptions options_;
  std::optional<WalWriter> writer_;
  WalReplayStats recovery_;
  /// Segmented mode: the active segment's number (segments are 1-based).
  uint64_t active_seq_ = 0;
  uint64_t segments_ = 0;
};

}  // namespace numdist::serve
