// Write-ahead snapshot log: the collector's crash-recovery substrate.
//
// A collector with a WAL attached appends every ACCEPTED report/sketch
// frame to an append-only log before acknowledging it, and periodically
// compacts the log down to a checkpoint record holding its per-tenant
// sketch frames. A collector killed at ANY byte offset — SIGKILL
// mid-write included — replays the log's clean prefix on restart and
// resumes with the exact pre-crash AccumulatorState: frames are absorbed
// in log order and accumulator arithmetic is exact integers, so the
// restarted aggregate is byte-identical to an uninterrupted run over the
// same frames (tests/wal_process_test.cc proves this across real
// processes).
//
// File layout (all integers little-endian; docs/WIRE_FORMAT.md has the
// byte-level spec):
//
//   header   u32 magic "NDWL", u16 version (1), u16 reserved (0)
//   record   u32 body length, u32 CRC-32C of body, body
//   body     u8 record type, payload
//     type 1 (frame)       payload = one wire frame (report or sketch)
//     type 2 (checkpoint)  payload = u32 sketch count, then per sketch a
//                          u32 length + that many bytes (one wire sketch
//                          frame per tenant; replay RESETS to this state)
//
// Failure model: the log tolerates truncation and bit rot at its tail —
// a record cut short or failing its CRC ends replay with a typed error
// in WalReplayStats::tail, the intact prefix's state is kept, and the
// writer truncates the torn tail before appending (so a crashed write is
// discarded, never replayed as garbage). Corruption that a torn write
// cannot explain (bad file magic, a valid-CRC record with an unknown
// type or malformed checkpoint payload) is a hard replay error instead.
// Without sync_each_record the log survives process death (page cache);
// power-loss durability needs sync_each_record = true.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace numdist::serve {

/// First 4 bytes of every WAL file: "NDWL" on disk.
inline constexpr uint32_t kWalMagic = 0x4C57444E;
inline constexpr uint16_t kWalVersion = 1;
/// Bytes of the file header preceding the first record.
inline constexpr uint64_t kWalHeaderBytes = 8;
/// Per-record body ceiling: a frame record holds at most one
/// kMaxFrameBytes frame, a checkpoint at most a handful of sketches.
/// A larger claimed length is classified as a torn/corrupt record.
inline constexpr uint64_t kMaxWalRecordBytes = 256u << 20;

/// Record discriminator (first body byte). Values are part of the on-disk
/// format: never renumber, only append.
enum class WalRecordType : uint8_t {
  kFrame = 1,       ///< One accepted wire frame, verbatim.
  kCheckpoint = 2,  ///< Full-state snapshot: replay resets, then imports.
};

struct WalOptions {
  /// Compact the log (checkpoint + truncate) after this many appended
  /// frame records (0 = only compact when the owner asks, e.g. at drain).
  uint64_t checkpoint_every_frames = 0;
  /// fsync after every record (power-loss durability). Off by default:
  /// surviving process death needs no fsync, only the page cache.
  bool sync_each_record = false;
};

/// What a replay pass found. `tail` is OK when the log ends exactly on a
/// record boundary; otherwise it is the typed torn-tail error (truncation
/// or CRC mismatch) and `clean_bytes` is where the intact prefix ends —
/// the offset WalWriter::Open truncates to before appending.
struct WalReplayStats {
  uint64_t frames = 0;
  uint64_t checkpoints = 0;
  uint64_t clean_bytes = 0;
  Status tail = Status::OK();
};

/// Replay callbacks. `on_frame` receives each logged frame verbatim;
/// `on_checkpoint` receives the checkpoint's sketch frames and must RESET
/// the consumer's state to them (not merge — a mid-log checkpoint already
/// contains every earlier frame's contribution). A callback error aborts
/// the replay with that error.
struct WalConsumer {
  std::function<Status(std::string_view frame)> on_frame;
  std::function<Status(const std::vector<std::string>& sketches)>
      on_checkpoint;
};

/// Replays the log at `path` through `consumer`. A missing or empty file
/// is an empty log (zero records, OK tail). See WalReplayStats for the
/// torn-tail contract; bad header magic/version and valid-CRC-but-
/// malformed records are hard errors.
Result<WalReplayStats> ReplayWal(const std::string& path,
                                 const WalConsumer& consumer);

/// \brief Appender for one collector's write-ahead log.
class WalWriter {
 public:
  /// Opens `path` for appending at offset `resume_at` — the replay's
  /// clean_bytes — truncating any torn tail past it. A fresh or empty
  /// log (resume_at < header size) is (re)initialized with the file
  /// header. The caller replays BEFORE opening: opening truncates.
  static Result<WalWriter> Open(const std::string& path, uint64_t resume_at,
                                const WalOptions& options = {});
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one accepted wire frame as a frame record.
  Status AppendFrame(std::string_view frame);

  /// Log compaction: atomically replaces the whole log with one
  /// checkpoint record holding `sketches` (written to a temp file,
  /// fsynced, renamed over the log). After Compact the log replays to
  /// exactly the checkpointed state.
  Status Compact(const std::vector<std::string>& sketches);

  /// fsyncs the log fd (a no-op durability-wise if nothing was written).
  Status Sync();

  /// Current log size in bytes (header + intact records).
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }
  const WalOptions& options() const { return options_; }

 private:
  WalWriter(int fd, std::string path, uint64_t bytes, WalOptions options);

  int fd_ = -1;
  std::string path_;
  uint64_t bytes_ = 0;
  WalOptions options_;
};

}  // namespace numdist::serve
