#include "serve/collector.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <ostream>
#include <utility>

#include "serve/framing.h"

namespace numdist::serve {

void TenantLedger::SetBudget(uint32_t tenant, TenantBudget budget) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[tenant].budget = budget;
}

Status TenantLedger::Charge(uint32_t tenant, uint64_t num_reports,
                            double epsilon) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[tenant];
  const uint64_t projected = entry.spent + num_reports;
  if (entry.budget.max_reports > 0 &&
      projected > entry.budget.max_reports) {
    return Status::FailedPrecondition(
        "collector: tenant " + std::to_string(tenant) +
        " over report budget (" + std::to_string(projected) + " > " +
        std::to_string(entry.budget.max_reports) + " reports)");
  }
  if (entry.budget.max_epsilon > 0.0 &&
      static_cast<double>(projected) * epsilon > entry.budget.max_epsilon) {
    return Status::FailedPrecondition(
        "collector: tenant " + std::to_string(tenant) +
        " over epsilon budget (" + std::to_string(projected) +
        " reports x epsilon " + std::to_string(epsilon) + " exceeds " +
        std::to_string(entry.budget.max_epsilon) + ")");
  }
  entry.spent = projected;
  return Status::OK();
}

void TenantLedger::Refund(uint32_t tenant, uint64_t num_reports) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[tenant];
  entry.spent -= std::min(entry.spent, num_reports);
}

uint64_t TenantLedger::spent_reports(uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(tenant);
  return it == entries_.end() ? 0 : it->second.spent;
}

void TenantLedger::ResetSpend() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [tenant, entry] : entries_) entry.spent = 0;
}

void TenantLedger::SetSpent(uint32_t tenant, uint64_t num_reports) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[tenant].spent = num_reports;
}

bool SequenceTracker::Claim(uint64_t epoch, uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  Window& window = windows_[epoch];
  if (seq <= window.floor) {
    // Normally a duplicate — unless this claim was released after an
    // Export folded it into the floor (the absorb was in flight on
    // another slot and later failed). Such a hole lives in `released`;
    // claiming it closes the hole again.
    return window.released.erase(seq) > 0;
  }
  return window.sparse.insert(seq).second;
}

void SequenceTracker::Release(uint64_t epoch, uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = windows_.find(epoch);
  if (it == windows_.end()) return;
  Window& window = it->second;
  if (seq <= window.floor) {
    // An Export folded this claim into the floor while its absorb was
    // still in flight. The floor cannot move back (seqs between are
    // genuinely absorbed), so record the hole: the client's retry is
    // accepted through Claim, and the next Export re-opens the window
    // below it so a checkpoint never persists the frame as absorbed.
    window.released.insert(seq);
  } else {
    window.sparse.erase(seq);
  }
}

std::vector<WalSeqEntry> SequenceTracker::Export() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalSeqEntry> entries;
  entries.reserve(windows_.size());
  for (auto& [epoch, window] : windows_) {
    // Un-fold any holes a Release punched below the floor since the last
    // Export: drop the floor to just under the lowest hole and lift the
    // still-absorbed seqs above it back into the sparse set. The
    // exported window then claims exactly the frames that were actually
    // absorbed, holes excluded. (Releases land at most a batch below the
    // floor, so this loop is short.)
    if (!window.released.empty()) {
      const uint64_t new_floor = *window.released.begin() - 1;
      for (uint64_t seq = new_floor + 1; seq <= window.floor; ++seq) {
        if (!window.released.contains(seq)) window.sparse.insert(seq);
      }
      window.floor = new_floor;
      window.released.clear();
    }
    // Compress: fold the contiguous run above the floor into the floor.
    // Claim/Release never raise the floor, and a release below it is
    // re-opened above, so a parallel absorb slot releasing a failed
    // claim cannot be lost to this advance.
    while (!window.sparse.empty() &&
           *window.sparse.begin() == window.floor + 1) {
      ++window.floor;
      window.sparse.erase(window.sparse.begin());
    }
    if (window.floor == 0 && window.sparse.empty()) continue;
    WalSeqEntry entry;
    entry.epoch = epoch;
    entry.floor = window.floor;
    entry.sparse.assign(window.sparse.begin(), window.sparse.end());
    entries.push_back(std::move(entry));
  }
  return entries;
}

void SequenceTracker::Restore(const std::vector<WalSeqEntry>& entries) {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.clear();
  for (const WalSeqEntry& entry : entries) {
    Window& window = windows_[entry.epoch];
    window.floor = entry.floor;
    window.sparse.insert(entry.sparse.begin(), entry.sparse.end());
  }
}

Result<CollectorSession> CollectorSession::Make(const wire::MethodSpec& spec) {
  NUMDIST_ASSIGN_OR_RETURN(ProtocolPtr protocol,
                           wire::MakeProtocolForSpec(spec));
  std::unique_ptr<Accumulator> acc = protocol->MakeAccumulator();
  return CollectorSession(spec, std::move(protocol), std::move(acc));
}

CollectorSession::CollectorSession(wire::MethodSpec spec, ProtocolPtr protocol,
                                   std::unique_ptr<Accumulator> acc)
    : spec_(spec),
      protocol_(std::move(protocol)),
      acc_(std::move(acc)),
      ledger_(std::make_shared<TenantLedger>()),
      tracker_(std::make_shared<SequenceTracker>()) {}

uint64_t CollectorSession::num_reports() const {
  uint64_t total = acc_->num_reports();
  for (const auto& [tenant, acc] : tenants_) total += acc->num_reports();
  return total;
}

Accumulator* CollectorSession::FindTenant(uint32_t tenant) {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

const Accumulator* CollectorSession::FindTenant(uint32_t tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Status CollectorSession::HandleFrame(std::span<const uint8_t> frame,
                                     FrameOutcome* outcome) {
  NUMDIST_ASSIGN_OR_RETURN(const wire::FrameInfo info, wire::PeekFrame(frame));
  if (outcome != nullptr) {
    *outcome = FrameOutcome{};
    outcome->has_seq = info.has_seq;
    outcome->seq = info.seq;
  }
  if (info.type == wire::FrameType::kAck) {
    return Status::InvalidArgument(
        "collector: ack frames flow collector -> client, not as input");
  }
  // The exactly-once window: claim the (epoch, seq) before doing any
  // work. A failed claim is a duplicate re-send — succeed without
  // touching anything so the caller re-acks it; a failure after a
  // successful claim releases it so the client's retry is accepted,
  // but ONLY when the absorb left state untouched.
  const bool sequenced = info.has_seq && tracker_ != nullptr;
  if (sequenced && !tracker_->Claim(info.seq.epoch, info.seq.seq)) {
    if (outcome != nullptr) outcome->duplicate = true;
    return Status::OK();
  }
  bool committed = false;
  const Status absorbed = AbsorbFrame(info, frame, &committed);
  if (!absorbed.ok()) {
    // A pre-commit failure (decode, over-budget, shape mismatch) rolled
    // everything back, so the claim must reopen for the retry. A failure
    // AFTER the accumulator/ledger commit — the WAL append inside
    // LogAccepted — keeps the claim: the frame IS aggregated and charged
    // here, so accepting a retransmit would double-count it. The caller
    // treats a WAL failure as fatal either way (never acks the frame),
    // and a restart replays a log without it, reopening the claim there.
    if (sequenced && !committed) {
      tracker_->Release(info.seq.epoch, info.seq.seq);
    }
    return absorbed;
  }
  if (outcome != nullptr) outcome->absorbed = true;
  if (forward_) {
    // Replication failure does NOT roll back: the frame is absorbed and
    // WAL-durable here, so releasing its claim would double-count the
    // client's retry. The caller decides whether to keep serving.
    return forward_(std::string_view(
        reinterpret_cast<const char*>(frame.data()), frame.size()));
  }
  return Status::OK();
}

Status CollectorSession::AbsorbFrame(const wire::FrameInfo& info,
                                     std::span<const uint8_t> frame,
                                     bool* committed) {
  *committed = false;
  // Reservation-then-absorb, into a staged accumulator for a first-seen
  // tenant: any failure (over budget, shape mismatch) before the commit
  // point must leave every accumulator, the tenant map, AND the ledger
  // exactly as they were. `committed` flips the moment they are mutated
  // for good, so HandleFrame can tell a rolled-back failure from a WAL
  // failure on an already-aggregated frame.
  const auto absorb = [&](uint64_t reports, auto&& apply) -> Status {
    Accumulator* target = nullptr;
    std::unique_ptr<Accumulator> staged;
    if (info.tenant == wire::kDefaultTenant) {
      target = acc_.get();
    } else if (Accumulator* existing = FindTenant(info.tenant)) {
      target = existing;
    } else {
      staged = protocol_->MakeAccumulator();
      target = staged.get();
    }
    NUMDIST_RETURN_NOT_OK(ledger_->Charge(info.tenant, reports, spec_.epsilon));
    const Status applied = apply(target);
    if (!applied.ok()) {
      ledger_->Refund(info.tenant, reports);
      return applied;
    }
    if (staged != nullptr) tenants_[info.tenant] = std::move(staged);
    *committed = true;
    return LogAccepted(frame);
  };
  switch (info.type) {
    case wire::FrameType::kReports: {
      NUMDIST_ASSIGN_OR_RETURN(
          std::unique_ptr<ReportChunk> chunk,
          wire::DecodeReportFrame(spec_, *protocol_, frame));
      return absorb(chunk->num_reports(), [&](Accumulator* acc) {
        return acc->Absorb(*chunk);
      });
    }
    case wire::FrameType::kSketch: {
      NUMDIST_ASSIGN_OR_RETURN(
          std::unique_ptr<Accumulator> other,
          wire::DecodeSketchFrame(spec_, *protocol_, frame));
      return absorb(other->num_reports(), [&](Accumulator* acc) {
        return acc->Merge(*other);
      });
    }
    case wire::FrameType::kSnapshot:
      return Status::InvalidArgument(
          "collector: snapshot frames belong to the scenario checkpoint "
          "path, not a protocol collector");
    case wire::FrameType::kAck:
      // HandleFrame rejects acks before claiming; unreachable here.
      return Status::InvalidArgument(
          "collector: ack frames flow collector -> client, not as input");
  }
  return Status::InvalidArgument("collector: unknown frame type");
}

Status CollectorSession::HandleFrame(std::string_view frame,
                                     FrameOutcome* outcome) {
  return HandleFrame(wire::FrameBytes(frame), outcome);
}

Result<std::unique_ptr<Accumulator>> CollectorSession::MergedTotal() const {
  std::unique_ptr<Accumulator> total = protocol_->MakeAccumulator();
  NUMDIST_RETURN_NOT_OK(total->Merge(*acc_));
  for (const auto& [tenant, acc] : tenants_) {
    NUMDIST_RETURN_NOT_OK(total->Merge(*acc));
  }
  return total;
}

Result<std::string> CollectorSession::EncodeSketch() const {
  std::string frame;
  if (tenants_.empty()) {
    // The pre-tenant fast path: byte-identical to encoding acc_ directly.
    NUMDIST_RETURN_NOT_OK(wire::EncodeSketchFrame(spec_, *acc_, &frame));
    return frame;
  }
  NUMDIST_ASSIGN_OR_RETURN(const std::unique_ptr<Accumulator> total,
                           MergedTotal());
  NUMDIST_RETURN_NOT_OK(wire::EncodeSketchFrame(spec_, *total, &frame));
  return frame;
}

Result<std::vector<std::string>> CollectorSession::EncodeSketches() const {
  std::vector<std::string> frames;
  for (const auto& [tenant, acc] : tenants_) {
    if (acc->num_reports() == 0) continue;
    std::string frame;
    NUMDIST_RETURN_NOT_OK(wire::EncodeSketchFrame(spec_, tenant, *acc,
                                                  &frame));
    frames.push_back(std::move(frame));
  }
  // The default tenant's untagged frame leads. An entirely empty session
  // still exports its (empty) default sketch, preserving the pre-tenant
  // "a collector always emits exactly one sketch" contract downstream.
  if (acc_->num_reports() > 0 || frames.empty()) {
    std::string frame;
    NUMDIST_RETURN_NOT_OK(wire::EncodeSketchFrame(spec_, *acc_, &frame));
    frames.insert(frames.begin(), std::move(frame));
  }
  return frames;
}

AccumulatorState CollectorSession::ExportState() const {
  if (tenants_.empty()) return acc_->ExportState();
  Result<std::unique_ptr<Accumulator>> total = MergedTotal();
  // Same-session accumulators share one protocol family, so the merge
  // cannot shape-mismatch; the fallback only guards a logic error.
  if (!total.ok()) return acc_->ExportState();
  return total.value()->ExportState();
}

Result<AccumulatorState> CollectorSession::ExportTenantState(
    uint32_t tenant) const {
  if (tenant == wire::kDefaultTenant) return acc_->ExportState();
  const Accumulator* acc = FindTenant(tenant);
  if (acc == nullptr) {
    return Status::InvalidArgument("collector: unknown tenant " +
                                   std::to_string(tenant));
  }
  return acc->ExportState();
}

std::vector<uint32_t> CollectorSession::TenantIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(tenants_.size());
  for (const auto& [tenant, acc] : tenants_) ids.push_back(tenant);
  return ids;
}

void CollectorSession::SetTenantBudget(uint32_t tenant, TenantBudget budget) {
  ledger_->SetBudget(tenant, budget);
}

void CollectorSession::set_ledger(std::shared_ptr<TenantLedger> ledger) {
  if (ledger != nullptr) ledger_ = std::move(ledger);
}

void CollectorSession::set_sequence_tracker(
    std::shared_ptr<SequenceTracker> tracker) {
  if (tracker != nullptr) tracker_ = std::move(tracker);
}

void CollectorSession::set_forward(
    std::function<Status(std::string_view frame)> forward) {
  forward_ = std::move(forward);
}

Status CollectorSession::AbsorbSession(const CollectorSession& other) {
  NUMDIST_RETURN_NOT_OK(acc_->Merge(*other.acc_));
  for (const auto& [tenant, acc] : other.tenants_) {
    Accumulator* mine = FindTenant(tenant);
    if (mine == nullptr) {
      std::unique_ptr<Accumulator> fresh = protocol_->MakeAccumulator();
      NUMDIST_RETURN_NOT_OK(fresh->Merge(*acc));
      tenants_[tenant] = std::move(fresh);
    } else {
      NUMDIST_RETURN_NOT_OK(mine->Merge(*acc));
    }
  }
  return Status::OK();
}

Status CollectorSession::ResetToSketches(
    const std::vector<std::string>& sketches) {
  // Stage the full restored state first: a malformed checkpoint must not
  // leave the session half-reset.
  std::unique_ptr<Accumulator> def = protocol_->MakeAccumulator();
  std::map<uint32_t, std::unique_ptr<Accumulator>> tenants;
  for (const std::string& frame : sketches) {
    NUMDIST_ASSIGN_OR_RETURN(const wire::FrameInfo info,
                             wire::PeekFrame(frame));
    if (info.type != wire::FrameType::kSketch) {
      return Status::InvalidArgument(
          "collector: checkpoint holds a non-sketch frame");
    }
    NUMDIST_ASSIGN_OR_RETURN(
        std::unique_ptr<Accumulator> acc,
        wire::DecodeSketchFrame(spec_, *protocol_, wire::FrameBytes(frame)));
    if (info.tenant == wire::kDefaultTenant) {
      NUMDIST_RETURN_NOT_OK(def->Merge(*acc));
    } else if (Accumulator* existing = [&]() -> Accumulator* {
                 const auto it = tenants.find(info.tenant);
                 return it == tenants.end() ? nullptr : it->second.get();
               }()) {
      NUMDIST_RETURN_NOT_OK(existing->Merge(*acc));
    } else {
      tenants[info.tenant] = std::move(acc);
    }
  }
  acc_ = std::move(def);
  tenants_ = std::move(tenants);
  // Re-seat the ledger on the restored state so budgets keep counting
  // from exactly the reports the aggregate actually holds.
  ledger_->ResetSpend();
  ledger_->SetSpent(wire::kDefaultTenant, acc_->num_reports());
  for (const auto& [tenant, acc] : tenants_) {
    ledger_->SetSpent(tenant, acc->num_reports());
  }
  return Status::OK();
}

Status CollectorSession::LogAccepted(std::span<const uint8_t> frame) {
  if (wal_ == nullptr) return Status::OK();
  NUMDIST_RETURN_NOT_OK(wal_->AppendFrame(std::string_view(
      reinterpret_cast<const char*>(frame.data()), frame.size())));
  ++wal_frames_since_checkpoint_;
  const uint64_t every = wal_->options().checkpoint_every_frames;
  if (every > 0 && wal_frames_since_checkpoint_ >= every) {
    return CompactWal();
  }
  return Status::OK();
}

Result<WalReplayStats> CollectorSession::RecoverAndAttachWal(
    const std::string& path, const WalOptions& options) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("collector: a WAL is already attached");
  }
  WalConsumer consumer;
  consumer.on_frame = [this](std::string_view frame) {
    return HandleFrame(frame);
  };
  consumer.on_checkpoint = [this](const std::vector<std::string>& sketches) {
    return ResetToSketches(sketches);
  };
  consumer.on_seq_checkpoint =
      [this](const std::vector<WalSeqEntry>& entries) {
        if (tracker_ != nullptr) tracker_->Restore(entries);
        return Status::OK();
      };
  NUMDIST_ASSIGN_OR_RETURN(WalLog log, WalLog::Open(path, options, consumer));
  wal_ = std::make_unique<WalLog>(std::move(log));
  wal_frames_since_checkpoint_ = 0;
  return wal_->recovery();
}

Status CollectorSession::CompactWal() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("collector: no WAL attached");
  }
  NUMDIST_ASSIGN_OR_RETURN(const std::vector<std::string> sketches,
                           EncodeSketches());
  std::vector<WalSeqEntry> seqs;
  if (tracker_ != nullptr) seqs = tracker_->Export();
  NUMDIST_RETURN_NOT_OK(wal_->Compact(sketches, seqs));
  wal_frames_since_checkpoint_ = 0;
  return Status::OK();
}

Result<MethodOutput> CollectorSession::Reconstruct() const {
  if (tenants_.empty()) return protocol_->Reconstruct(*acc_);
  NUMDIST_ASSIGN_OR_RETURN(const std::unique_ptr<Accumulator> total,
                           MergedTotal());
  return protocol_->Reconstruct(*total);
}

namespace {

Status WriteSketches(std::ostream& out, CollectorSession* session) {
  NUMDIST_ASSIGN_OR_RETURN(const std::vector<std::string> sketches,
                           session->EncodeSketches());
  for (const std::string& sketch : sketches) {
    NUMDIST_RETURN_NOT_OK(WriteFrame(out, sketch));
  }
  out.flush();
  return Status::OK();
}

}  // namespace

Status ServeStream(std::istream& in, std::ostream& out,
                   CollectorSession* session) {
  std::string frame;
  bool eof = false;
  while (true) {
    NUMDIST_RETURN_NOT_OK(ReadFrame(in, &frame, &eof));
    if (eof) break;
    NUMDIST_RETURN_NOT_OK(session->HandleFrame(frame));
  }
  return WriteSketches(out, session);
}

Status ServeFd(int in_fd, std::ostream& out, CollectorSession* session,
               const ServeFdOptions& options) {
  FrameDecoder decoder(options.max_bytes);
  std::string frame;
  char buf[64 * 1024];
  for (;;) {
    // The deadline is armed only mid-frame: a quiet-but-idle client keeps
    // the connection, a client that died mid-frame surfaces in bounded
    // time as the typed mid-stream error.
    const int timeout =
        (options.read_timeout_ms > 0 && decoder.mid_frame())
            ? options.read_timeout_ms
            : -1;
    struct pollfd pfd = {in_fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("collector: poll failed (errno " +
                              std::to_string(errno) + ")");
    }
    if (ready == 0) {
      // Stalled mid-frame past the deadline: same taxonomy as an EOF at
      // this position, with the stall called out.
      return Status::OutOfRange(
          "framing: read timed out inside a frame after " +
          std::to_string(options.read_timeout_ms) + " ms (" +
          decoder.AtEnd().message() + ")");
    }
    const ssize_t got = read(in_fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("collector: read failed (errno " +
                              std::to_string(errno) + ")");
    }
    if (got == 0) {
      NUMDIST_RETURN_NOT_OK(decoder.AtEnd());  // clean boundary or typed error
      break;
    }
    NUMDIST_RETURN_NOT_OK(
        decoder.Feed(std::string_view(buf, static_cast<size_t>(got))));
    while (decoder.Next(&frame)) {
      FrameOutcome outcome;
      NUMDIST_RETURN_NOT_OK(session->HandleFrame(frame, &outcome));
      if (outcome.has_seq) {
        // Ack AFTER absorb + WAL append: an ack the client sees always
        // refers to a frame that survives this collector's crash.
        std::string ack;
        NUMDIST_RETURN_NOT_OK(wire::EncodeAckFrame(outcome.seq, &ack));
        NUMDIST_RETURN_NOT_OK(WriteFrame(out, ack));
        out.flush();
      }
    }
  }
  return WriteSketches(out, session);
}

}  // namespace numdist::serve
