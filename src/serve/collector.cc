#include "serve/collector.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <ostream>
#include <utility>

#include "serve/framing.h"

namespace numdist::serve {

Result<CollectorSession> CollectorSession::Make(const wire::MethodSpec& spec) {
  NUMDIST_ASSIGN_OR_RETURN(ProtocolPtr protocol,
                           wire::MakeProtocolForSpec(spec));
  std::unique_ptr<Accumulator> acc = protocol->MakeAccumulator();
  return CollectorSession(spec, std::move(protocol), std::move(acc));
}

CollectorSession::CollectorSession(wire::MethodSpec spec, ProtocolPtr protocol,
                                   std::unique_ptr<Accumulator> acc)
    : spec_(spec), protocol_(std::move(protocol)), acc_(std::move(acc)) {}

Status CollectorSession::HandleFrame(std::span<const uint8_t> frame) {
  NUMDIST_ASSIGN_OR_RETURN(const wire::FrameInfo info, wire::PeekFrame(frame));
  switch (info.type) {
    case wire::FrameType::kReports: {
      NUMDIST_ASSIGN_OR_RETURN(
          std::unique_ptr<ReportChunk> chunk,
          wire::DecodeReportFrame(spec_, *protocol_, frame));
      return acc_->Absorb(*chunk);
    }
    case wire::FrameType::kSketch: {
      NUMDIST_ASSIGN_OR_RETURN(
          std::unique_ptr<Accumulator> other,
          wire::DecodeSketchFrame(spec_, *protocol_, frame));
      return acc_->Merge(*other);
    }
    case wire::FrameType::kSnapshot:
      return Status::InvalidArgument(
          "collector: snapshot frames belong to the scenario checkpoint "
          "path, not a protocol collector");
  }
  return Status::InvalidArgument("collector: unknown frame type");
}

Status CollectorSession::HandleFrame(std::string_view frame) {
  return HandleFrame(wire::FrameBytes(frame));
}

Result<std::string> CollectorSession::EncodeSketch() const {
  std::string frame;
  NUMDIST_RETURN_NOT_OK(wire::EncodeSketchFrame(spec_, *acc_, &frame));
  return frame;
}

Result<MethodOutput> CollectorSession::Reconstruct() const {
  return protocol_->Reconstruct(*acc_);
}

Status ServeStream(std::istream& in, std::ostream& out,
                   CollectorSession* session) {
  std::string frame;
  bool eof = false;
  while (true) {
    NUMDIST_RETURN_NOT_OK(ReadFrame(in, &frame, &eof));
    if (eof) break;
    NUMDIST_RETURN_NOT_OK(session->HandleFrame(frame));
  }
  NUMDIST_ASSIGN_OR_RETURN(const std::string sketch, session->EncodeSketch());
  NUMDIST_RETURN_NOT_OK(WriteFrame(out, sketch));
  out.flush();
  return Status::OK();
}

Status ServeFd(int in_fd, std::ostream& out, CollectorSession* session,
               const ServeFdOptions& options) {
  FrameDecoder decoder(options.max_bytes);
  std::string frame;
  char buf[64 * 1024];
  for (;;) {
    // The deadline is armed only mid-frame: a quiet-but-idle client keeps
    // the connection, a client that died mid-frame surfaces in bounded
    // time as the typed mid-stream error.
    const int timeout =
        (options.read_timeout_ms > 0 && decoder.mid_frame())
            ? options.read_timeout_ms
            : -1;
    struct pollfd pfd = {in_fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("collector: poll failed (errno " +
                              std::to_string(errno) + ")");
    }
    if (ready == 0) {
      // Stalled mid-frame past the deadline: same taxonomy as an EOF at
      // this position, with the stall called out.
      return Status::OutOfRange(
          "framing: read timed out inside a frame after " +
          std::to_string(options.read_timeout_ms) + " ms (" +
          decoder.AtEnd().message() + ")");
    }
    const ssize_t got = read(in_fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("collector: read failed (errno " +
                              std::to_string(errno) + ")");
    }
    if (got == 0) {
      NUMDIST_RETURN_NOT_OK(decoder.AtEnd());  // clean boundary or typed error
      break;
    }
    NUMDIST_RETURN_NOT_OK(
        decoder.Feed(std::string_view(buf, static_cast<size_t>(got))));
    while (decoder.Next(&frame)) {
      NUMDIST_RETURN_NOT_OK(session->HandleFrame(frame));
    }
  }
  NUMDIST_ASSIGN_OR_RETURN(const std::string sketch, session->EncodeSketch());
  NUMDIST_RETURN_NOT_OK(WriteFrame(out, sketch));
  out.flush();
  return Status::OK();
}

}  // namespace numdist::serve
