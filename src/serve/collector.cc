#include "serve/collector.h"

#include <ostream>
#include <utility>

#include "serve/framing.h"

namespace numdist::serve {

Result<CollectorSession> CollectorSession::Make(const wire::MethodSpec& spec) {
  NUMDIST_ASSIGN_OR_RETURN(ProtocolPtr protocol,
                           wire::MakeProtocolForSpec(spec));
  std::unique_ptr<Accumulator> acc = protocol->MakeAccumulator();
  return CollectorSession(spec, std::move(protocol), std::move(acc));
}

CollectorSession::CollectorSession(wire::MethodSpec spec, ProtocolPtr protocol,
                                   std::unique_ptr<Accumulator> acc)
    : spec_(spec), protocol_(std::move(protocol)), acc_(std::move(acc)) {}

Status CollectorSession::HandleFrame(std::span<const uint8_t> frame) {
  NUMDIST_ASSIGN_OR_RETURN(const wire::FrameInfo info, wire::PeekFrame(frame));
  switch (info.type) {
    case wire::FrameType::kReports: {
      NUMDIST_ASSIGN_OR_RETURN(
          std::unique_ptr<ReportChunk> chunk,
          wire::DecodeReportFrame(spec_, *protocol_, frame));
      return acc_->Absorb(*chunk);
    }
    case wire::FrameType::kSketch: {
      NUMDIST_ASSIGN_OR_RETURN(
          std::unique_ptr<Accumulator> other,
          wire::DecodeSketchFrame(spec_, *protocol_, frame));
      return acc_->Merge(*other);
    }
    case wire::FrameType::kSnapshot:
      return Status::InvalidArgument(
          "collector: snapshot frames belong to the scenario checkpoint "
          "path, not a protocol collector");
  }
  return Status::InvalidArgument("collector: unknown frame type");
}

Status CollectorSession::HandleFrame(std::string_view frame) {
  return HandleFrame(wire::FrameBytes(frame));
}

Result<std::string> CollectorSession::EncodeSketch() const {
  std::string frame;
  NUMDIST_RETURN_NOT_OK(wire::EncodeSketchFrame(spec_, *acc_, &frame));
  return frame;
}

Result<MethodOutput> CollectorSession::Reconstruct() const {
  return protocol_->Reconstruct(*acc_);
}

Status ServeStream(std::istream& in, std::ostream& out,
                   CollectorSession* session) {
  std::string frame;
  bool eof = false;
  while (true) {
    NUMDIST_RETURN_NOT_OK(ReadFrame(in, &frame, &eof));
    if (eof) break;
    NUMDIST_RETURN_NOT_OK(session->HandleFrame(frame));
  }
  NUMDIST_ASSIGN_OR_RETURN(const std::string sketch, session->EncodeSketch());
  NUMDIST_RETURN_NOT_OK(WriteFrame(out, sketch));
  out.flush();
  return Status::OK();
}

}  // namespace numdist::serve
