// Minimal dense row-major matrix: transition matrices and the small linear
// solves used in tests. Not a general linear-algebra library — only what the
// estimators need (storage, mat-vec, transpose-vec).
#pragma once

#include <cstddef>
#include <vector>

namespace numdist {

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Creates a rows x cols matrix initialized to `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Pointer to the start of row i (contiguous, cols() entries).
  const double* row(size_t i) const { return data_.data() + i * cols_; }
  double* row(size_t i) { return data_.data() + i * cols_; }

  /// y = A x  (x.size() == cols()).
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// y = A^T x  (x.size() == rows()).
  std::vector<double> TransposeMultiply(const std::vector<double>& x) const;

  /// y = A x into a caller-owned vector (resized to rows(); no allocation
  /// when y already has the right capacity). &x != y required.
  void MultiplyInto(const std::vector<double>& x, std::vector<double>* y) const;

  /// y = A^T x into a caller-owned vector (resized to cols()). &x != y.
  void TransposeMultiplyInto(const std::vector<double>& x,
                             std::vector<double>* y) const;

  /// Sum of column j.
  double ColumnSum(size_t j) const;

  /// Solves A x = b in-place by Gaussian elimination with partial pivoting.
  /// Returns false if the matrix is (numerically) singular. A is destroyed.
  /// Used only in tests and small post-processing problems.
  static bool SolveInPlace(Matrix& a, std::vector<double>& b);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace numdist
