// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
// the integrity check framing the write-ahead log records (serve/wal.h).
//
// Software-only slice-by-one table implementation: the WAL's durability
// contract is "a torn or bit-flipped record is a typed error, never a
// crash or a silently wrong aggregate", and a few hundred MB/s of
// checksum throughput is far above the log's append rate, so no SSE4.2
// dispatch is warranted here. The byte-level framing this checksum
// participates in is specified in docs/WIRE_FORMAT.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace numdist {

/// CRC-32C of `data`, continuing from `seed` (pass the previous call's
/// return value to checksum a logical record fed in pieces). The empty
/// string checksums to 0.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace numdist
