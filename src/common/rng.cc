#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kernels/kernels.h"

namespace numdist {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through splitmix64 so that similar seeds give unrelated
  // streams (the xoshiro authors' recommended seeding procedure).
  uint64_t sm = seed;
  for (auto& s : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    uint64_t z = sm;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    s = z ^ (z >> 31);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (~n + 1) % n;  // == 2^64 mod n
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a);
  const double y = Gamma(b);
  return x / (x + y);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

void Rng::FillRaw(uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = Next();
}

void Rng::FillUniform(double* out, size_t n) {
  // Same mapping as Uniform(): 53 high bits of each sequential output.
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
}

void Rng::FillUniformInt(uint64_t* out, size_t n, uint64_t bound) {
  for (size_t i = 0; i < n; ++i) out[i] = UniformInt(bound);
}

void Rng::FillBernoulli(uint8_t* out, size_t n, double p) {
  // Chunked: fill uniforms on the stack, compare through the dispatched
  // kernel. Draw order is exactly n sequential Bernoulli(p) calls.
  constexpr size_t kChunk = 256;
  double u[kChunk];
  size_t i = 0;
  while (i < n) {
    const size_t m = std::min(kChunk, n - i);
    FillUniform(u, m);
    kernels::LessThan(u, p, out + i, m);
    i += m;
  }
}

Rng Rng::Fork() { return Rng(Next()); }

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  const size_t d = weights.size();
  assert(d > 0);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  prob_.assign(d, 0.0);
  alias_.assign(d, 0);
  // Walker's alias method: split categories into those above/below average
  // and pair each "small" slot with a "large" donor.
  std::vector<double> scaled(d);
  std::vector<uint32_t> small, large;
  small.reserve(d);
  large.reserve(d);
  for (size_t i = 0; i < d; ++i) {
    scaled[i] = weights[i] * static_cast<double>(d) / total;
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t l : large) prob_[l] = 1.0;
  for (uint32_t s : small) prob_[s] = 1.0;  // numerical leftovers
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  const size_t i = rng.UniformInt(prob_.size());
  return rng.Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace numdist
