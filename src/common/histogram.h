// Histogram primitives shared by mechanisms, estimators and metrics.
//
// A distribution over the canonical domain [0, 1] is represented as a
// d-bucket probability vector (std::vector<double>, non-negative, sum 1).
// Bucket i covers [i/d, (i+1)/d); the last bucket is closed on the right.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace numdist {
namespace hist {

/// Index of the bucket containing `v` in a `d`-bucket grid over [0, 1].
/// Values are clamped into [0, 1] first (robustness against FP round-off).
size_t BucketOf(double v, size_t d);

/// Index of the bucket containing `v` in a `d`-bucket grid over [lo, hi).
size_t BucketOf(double v, size_t d, double lo, double hi);

/// Center of bucket `i` in a `d`-bucket grid over [0, 1].
double BucketCenter(size_t i, size_t d);

/// Raw counts of `values` over a `d`-bucket grid on [0, 1].
std::vector<uint64_t> Counts(const std::vector<double>& values, size_t d);

/// Normalized frequencies of `values` over a `d`-bucket grid on [0, 1].
std::vector<double> FromSamples(const std::vector<double>& values, size_t d);

/// Sum of all entries.
double Sum(const std::vector<double>& x);

/// Scales `x` in place so it sums to 1 (no-op if the sum is <= 0).
void Normalize(std::vector<double>* x);

/// Prefix sums: out[i] = x[0] + ... + x[i]. out.size() == x.size().
std::vector<double> Cdf(const std::vector<double>& x);

/// True iff all entries are >= -tol and the sum is within tol of 1.
bool IsDistribution(const std::vector<double>& x, double tol = 1e-9);

}  // namespace hist
}  // namespace numdist
