// Seeded structured byte mutator for the wire-format fuzz harness.
//
// Takes a valid frame and applies one randomly chosen corruption from a
// fixed menu (bit flips, byte stomps, truncation, extension, splice,
// 4-byte length-field lies, low-offset enum skew). Every mutation is a
// pure function of the Rng stream, so a (seed, iteration) pair names one
// mutant exactly — CI failures replay locally, and the fuzz sweep in
// tests/fuzz_wire_test.cc is as deterministic as the unit tests around it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.h"

namespace numdist {

/// The corruption menu. Kept small and structural on purpose: random byte
/// noise alone rarely reaches the interesting decoder branches (length
/// bounds, enum dispatch, trailing-byte checks), so half the menu aims at
/// exactly those.
enum class MutationKind {
  kBitFlip = 0,      // flip 1..8 random bits anywhere
  kByteSet,          // stomp 1..4 random bytes with random values
  kTruncate,         // drop a random-length tail (possibly to empty)
  kExtend,           // append 1..16 random trailing bytes
  kSplice,           // overwrite a range with bytes from another offset
  kLengthLie,        // rewrite a random aligned u32 LE with a hostile value
  kEnumSkew,         // stomp one byte in the first 32 (preamble/method block)
  kMutationKindCount
};

/// Human-readable name for diagnostics ("bit-flip", "length-lie", ...).
std::string_view MutationKindName(MutationKind kind);

/// \brief Applies one seeded corruption per call.
///
/// The mutator owns no buffers; `Mutate` copies the pristine input and
/// corrupts the copy, so callers can reuse one canonical frame for the
/// whole sweep. Hostile u32 values favor the decoder's decision boundaries
/// (0, huge, off-by-one around the real length) over uniform noise.
class ByteMutator {
 public:
  explicit ByteMutator(uint64_t seed) : rng_(seed) {}

  /// Returns a corrupted copy of `input`. `input` may be empty (only
  /// kExtend then changes anything; the rest degenerate to a no-op copy,
  /// which is still a legal fuzz case: the empty frame).
  std::string Mutate(std::string_view input);

  /// Like Mutate but forces a specific corruption kind (used by tests that
  /// want guaranteed coverage of every menu entry).
  std::string MutateWith(MutationKind kind, std::string_view input);

  /// Kind chosen by the most recent Mutate call (for failure messages).
  MutationKind last_kind() const { return last_kind_; }

 private:
  Rng rng_;
  MutationKind last_kind_ = MutationKind::kBitFlip;
};

}  // namespace numdist
