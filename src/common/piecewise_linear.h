// Exact algebra on piecewise-linear functions.
//
// Every wave shape in the General Wave family (square, trapezoid, triangle)
// is piecewise linear, so transition-matrix entries — double integrals of
// W(out - in) over bucket rectangles — have closed forms via the first and
// second antiderivatives of W. This class provides those, plus exact
// inverse-CDF sampling when the function is used as an (unnormalized)
// probability density.
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace numdist {

/// \brief A continuous piecewise-linear function on [x_0, x_k], zero outside.
///
/// Defined by strictly increasing knots x_0 < ... < x_k and values y_i at
/// each knot; linear interpolation between knots; identically 0 outside the
/// knot range. Immutable after construction.
class PiecewiseLinear {
 public:
  /// Builds the function. Requirements: >= 2 knots, strictly increasing xs,
  /// xs.size() == ys.size(), all ys finite.
  static Result<PiecewiseLinear> Make(std::vector<double> xs,
                                      std::vector<double> ys);

  /// Function value at `x` (0 outside the knot range).
  double Evaluate(double x) const;

  /// First antiderivative F(x) = integral of f over (-inf, x].
  double Antiderivative(double x) const;

  /// Second antiderivative G(x) = integral of F over (-inf, x].
  /// Note F is constant (== TotalIntegral()) right of the last knot, so G
  /// grows linearly there; both tails are handled exactly.
  double SecondAntiderivative(double x) const;

  /// Exact integral of f over [a, b] (a <= b).
  double IntegralBetween(double a, double b) const;

  /// Integral of f over its full support.
  double TotalIntegral() const;

  /// Exact double integral  ∫_{v=a}^{b} ∫_{u=l}^{r} f(u - v) du dv.
  /// This is the workhorse of transition-matrix construction.
  double RectangleConvolutionIntegral(double l, double r, double a,
                                      double b) const;

  /// Minimum function value over the support.
  double MinValue() const;
  /// Maximum function value over the support.
  double MaxValue() const;

  /// Leftmost knot.
  double xmin() const { return xs_.front(); }
  /// Rightmost knot.
  double xmax() const { return xs_.back(); }
  /// The knot abscissae.
  const std::vector<double>& knots() const { return xs_; }
  /// The knot ordinates.
  const std::vector<double>& values() const { return ys_; }

  /// Draws a sample with density proportional to f restricted to [lo, hi].
  /// Requires f >= 0 on [lo, hi] and a positive integral there.
  /// Exact inverse-CDF sampling (quadratic solve per linear segment).
  double SampleDensity(double lo, double hi, Rng& rng) const;

 private:
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  size_t SegmentOf(double x) const;  // index i with xs_[i] <= x < xs_[i+1]

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> cum_;   // F at each knot (cum_[0] == 0)
  std::vector<double> cum2_;  // G at each knot (cum2_[0] == 0)
};

}  // namespace numdist
