#include "common/matrix.h"

#include <cassert>
#include <cmath>

#include "kernels/kernels.h"

namespace numdist {

std::vector<double> Matrix::Multiply(const std::vector<double>& x) const {
  std::vector<double> y;
  MultiplyInto(x, &y);
  return y;
}

std::vector<double> Matrix::TransposeMultiply(
    const std::vector<double>& x) const {
  std::vector<double> y;
  TransposeMultiplyInto(x, &y);
  return y;
}

void Matrix::MultiplyInto(const std::vector<double>& x,
                          std::vector<double>* y) const {
  assert(x.size() == cols_);
  assert(&x != y);
  y->resize(rows_);
  // One dispatched blocked dot per row (kernels.h: fixed-order reduction,
  // bit-identical under scalar and AVX2 dispatch).
  for (size_t i = 0; i < rows_; ++i) {
    (*y)[i] = kernels::Dot(row(i), x.data(), cols_);
  }
}

void Matrix::TransposeMultiplyInto(const std::vector<double>& x,
                                   std::vector<double>* y) const {
  assert(x.size() == rows_);
  assert(&x != y);
  y->assign(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    kernels::Axpy(y->data(), xi, row(i), cols_);
  }
}

double Matrix::ColumnSum(size_t j) const {
  assert(j < cols_);
  double s = 0.0;
  for (size_t i = 0; i < rows_; ++i) s += (*this)(i, j);
  return s;
}

bool Matrix::SolveInPlace(Matrix& a, std::vector<double>& b) {
  assert(a.rows() == a.cols() && b.size() == a.rows());
  const size_t n = a.rows();
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > best) {
        best = std::fabs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t j = col; j < n; ++j) a(r, j) -= factor * a(col, j);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  for (size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (size_t j = i + 1; j < n; ++j) acc -= a(i, j) * b[j];
    b[i] = acc / a(i, i);
  }
  return true;
}

}  // namespace numdist
