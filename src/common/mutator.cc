#include "common/mutator.h"

#include <cstring>

namespace numdist {
namespace {

// Hostile u32 candidates for kLengthLie: decoder decision boundaries beat
// uniform noise at reaching the bounds checks. The real-length variants are
// patched in at mutation time.
constexpr uint32_t kHostileU32[] = {
    0u,          1u,           0x7FFFFFFFu, 0x80000000u,
    0xFFFFFFFFu, 64u << 20,    (64u << 20) + 1,  // kMaxFrameBytes edge
};

}  // namespace

std::string_view MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kBitFlip: return "bit-flip";
    case MutationKind::kByteSet: return "byte-set";
    case MutationKind::kTruncate: return "truncate";
    case MutationKind::kExtend: return "extend";
    case MutationKind::kSplice: return "splice";
    case MutationKind::kLengthLie: return "length-lie";
    case MutationKind::kEnumSkew: return "enum-skew";
    case MutationKind::kMutationKindCount: break;
  }
  return "unknown";
}

std::string ByteMutator::Mutate(std::string_view input) {
  const auto kind = static_cast<MutationKind>(rng_.UniformInt(
      static_cast<uint64_t>(MutationKind::kMutationKindCount)));
  return MutateWith(kind, input);
}

std::string ByteMutator::MutateWith(MutationKind kind,
                                    std::string_view input) {
  last_kind_ = kind;
  std::string out(input);
  const size_t n = out.size();
  switch (kind) {
    case MutationKind::kBitFlip: {
      if (n == 0) break;
      const size_t flips = 1 + rng_.UniformInt(8);
      for (size_t i = 0; i < flips; ++i) {
        const size_t bit = rng_.UniformInt(8 * n);
        out[bit / 8] = static_cast<char>(
            static_cast<uint8_t>(out[bit / 8]) ^ (1u << (bit % 8)));
      }
      break;
    }
    case MutationKind::kByteSet: {
      if (n == 0) break;
      const size_t stomps = 1 + rng_.UniformInt(4);
      for (size_t i = 0; i < stomps; ++i) {
        out[rng_.UniformInt(n)] =
            static_cast<char>(rng_.UniformInt(256));
      }
      break;
    }
    case MutationKind::kTruncate: {
      if (n == 0) break;
      out.resize(rng_.UniformInt(n));  // always drops >= 1 byte
      break;
    }
    case MutationKind::kExtend: {
      const size_t extra = 1 + rng_.UniformInt(16);
      for (size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<char>(rng_.UniformInt(256)));
      }
      break;
    }
    case MutationKind::kSplice: {
      if (n < 2) break;
      const size_t dst = rng_.UniformInt(n);
      const size_t src = rng_.UniformInt(n);
      const size_t len = 1 + rng_.UniformInt(n - (dst > src ? dst : src));
      // memmove semantics: ranges may overlap.
      std::memmove(&out[dst], input.data() + src, len);
      break;
    }
    case MutationKind::kLengthLie: {
      if (n < 4) break;
      const size_t at = rng_.UniformInt(n - 3);
      uint32_t lie;
      const uint64_t pick = rng_.UniformInt(
          sizeof(kHostileU32) / sizeof(kHostileU32[0]) + 2);
      if (pick < sizeof(kHostileU32) / sizeof(kHostileU32[0])) {
        lie = kHostileU32[pick];
      } else if (pick == sizeof(kHostileU32) / sizeof(kHostileU32[0])) {
        lie = static_cast<uint32_t>(n) + 1;  // claims one byte too many
      } else {
        lie = static_cast<uint32_t>(n) - 1;  // claims one byte too few
      }
      for (int b = 0; b < 4; ++b) {
        out[at + b] = static_cast<char>((lie >> (8 * b)) & 0xFF);
      }
      break;
    }
    case MutationKind::kEnumSkew: {
      if (n == 0) break;
      // The preamble + method block live in the first ~25 bytes; stomping
      // there skews magic/version/frame-type/method-id/flags.
      const size_t limit = n < 32 ? n : 32;
      out[rng_.UniformInt(limit)] =
          static_cast<char>(rng_.UniformInt(256));
      break;
    }
    case MutationKind::kMutationKindCount:
      break;
  }
  return out;
}

}  // namespace numdist
