// Arrow/RocksDB-style status type: library entry points that can fail return
// Status (or Result<T>, see result.h) instead of throwing.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace numdist {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotConverged = 4,
  kInternal = 5,
};

/// \brief Lightweight success/error carrier.
///
/// A `Status` is either OK (no payload) or an error with a code and message.
/// Modeled after arrow::Status; cheap to move, cheap to test for OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an invalid-argument error with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns an out-of-range error with the given message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a failed-precondition error with the given message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns a not-converged error with the given message.
  static Status NotConverged(std::string message) {
    return Status(StatusCode::kNotConverged, std::move(message));
  }
  /// Returns an internal error with the given message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: epsilon must be > 0".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns the canonical name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

}  // namespace numdist

/// Propagates an error status from an expression, Arrow-style.
#define NUMDIST_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::numdist::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)
