// Deterministic random number generation for mechanisms and experiments.
//
// Every randomized component in the library takes an explicit Rng&, so all
// experiments are seeded and bit-reproducible. The engine is xoshiro256++,
// which is fast (sub-ns per draw) and passes BigCrush; mechanisms are in the
// hot path (one draw per user per report), so we avoid std::mt19937_64's
// larger state and slower mixing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace numdist {

/// \brief Seedable xoshiro256++ engine with the distribution helpers the
/// library needs (uniform, Bernoulli, discrete, Gaussian-ish via sums).
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs an engine from a 64-bit seed (expanded via splitmix64).
  explicit Rng(uint64_t seed = 0xda3e39cb94b95bdbULL);

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);
  /// Standard normal via Box-Muller (used by dataset generators).
  double Gaussian();
  /// Gamma(shape, 1) via Marsaglia-Tsang (shape > 0).
  double Gamma(double shape);
  /// Beta(a, b) via two Gamma draws.
  double Beta(double a, double b);

  /// Draws an index from the discrete distribution given by `weights`
  /// (non-negative, not necessarily normalized). Linear scan; use
  /// DiscreteSampler for repeated draws from the same distribution.
  size_t Discrete(const std::vector<double>& weights);

  // Bulk generation. Each Fill* call consumes the SAME engine stream in the
  // SAME draw order as the equivalent loop of single draws — FillUniform(p,
  // n) leaves the engine in exactly the state n Uniform() calls would, with
  // identical outputs (asserted by tests/rng_test.cc). Batch encoders build
  // on this so a fixed seed keeps producing bit-identical reports while the
  // transform over the filled span vectorizes.

  /// out[i] = Next() for i in [0, n).
  void FillRaw(uint64_t* out, size_t n);
  /// out[i] = Uniform() for i in [0, n).
  void FillUniform(double* out, size_t n);
  /// out[i] = UniformInt(bound) for i in [0, n). Requires bound > 0.
  void FillUniformInt(uint64_t* out, size_t n, uint64_t bound);
  /// out[i] = Bernoulli(p) for i in [0, n) (1 = success). The compare over
  /// each filled chunk runs through the dispatched SIMD kernels.
  void FillBernoulli(uint8_t* out, size_t n, double p);

  /// Derives an independent child engine (for per-thread streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// \brief Alias-method sampler: O(d) build, O(1) per draw.
///
/// Used where the same discrete distribution is sampled n times (e.g. the
/// "far" region of the discrete Square Wave, or dataset generation).
class DiscreteSampler {
 public:
  /// Builds the alias table for `weights` (non-negative, sum > 0).
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws one index.
  size_t Sample(Rng& rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// splitmix64 mix function; also used as the OLH hash primitive.
uint64_t SplitMix64(uint64_t x);

}  // namespace numdist
