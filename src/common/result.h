// Result<T>: value-or-Status, the library's fallible-constructor return type.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace numdist {

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// Usage:
/// \code
///   Result<SquareWave> sw = SquareWave::Make(epsilon);
///   if (!sw.ok()) return sw.status();
///   sw->Perturb(...);
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, Arrow-style).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a Result holding an error. `status.ok()` must be false.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok());
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; Status::OK() if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  /// The held value (mutable). Requires ok().
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  /// Moves the held value out. Requires ok().
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// Pointer-style access to the held value. Requires ok().
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  /// Returns the value or aborts with the error message (tests/examples).
  T ValueOrDie() && {
    if (!ok()) {
      // Examples and tests use this for brevity; the library itself does not.
      fprintf(stderr, "Result::ValueOrDie on error: %s\n",
              status().ToString().c_str());
      abort();
    }
    return std::get<T>(std::move(payload_));
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace numdist

#define NUMDIST_INTERNAL_CONCAT_(a, b) a##b
#define NUMDIST_INTERNAL_CONCAT(a, b) NUMDIST_INTERNAL_CONCAT_(a, b)
#define NUMDIST_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto&& tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value();

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error. The temporary's name goes through a two-level paste so __LINE__
/// expands, letting several uses share one scope.
#define NUMDIST_ASSIGN_OR_RETURN(lhs, expr) \
  NUMDIST_INTERNAL_ASSIGN_OR_RETURN(        \
      NUMDIST_INTERNAL_CONCAT(_numdist_res_, __LINE__), lhs, expr)
