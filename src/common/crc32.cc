#include "common/crc32.h"

#include <array>

namespace numdist {

namespace {

// 256-entry table for the reflected Castagnoli polynomial, built once at
// static-init time (the generator is trivial and branch-free, so there is
// nothing to be gained from committing 1 KiB of literals instead).
std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82F63B78u;
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace numdist
