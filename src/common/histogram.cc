#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace numdist {
namespace hist {

size_t BucketOf(double v, size_t d) {
  assert(d > 0);
  v = std::clamp(v, 0.0, 1.0);
  const size_t i = static_cast<size_t>(v * static_cast<double>(d));
  return std::min(i, d - 1);
}

size_t BucketOf(double v, size_t d, double lo, double hi) {
  assert(hi > lo);
  return BucketOf((v - lo) / (hi - lo), d);
}

double BucketCenter(size_t i, size_t d) {
  assert(i < d);
  return (static_cast<double>(i) + 0.5) / static_cast<double>(d);
}

std::vector<uint64_t> Counts(const std::vector<double>& values, size_t d) {
  std::vector<uint64_t> counts(d, 0);
  for (double v : values) ++counts[BucketOf(v, d)];
  return counts;
}

std::vector<double> FromSamples(const std::vector<double>& values, size_t d) {
  std::vector<double> freq(d, 0.0);
  if (values.empty()) return freq;
  const double w = 1.0 / static_cast<double>(values.size());
  for (double v : values) freq[BucketOf(v, d)] += w;
  return freq;
}

double Sum(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v;
  return s;
}

void Normalize(std::vector<double>* x) {
  const double s = Sum(*x);
  if (s <= 0.0) return;
  for (double& v : *x) v /= s;
}

std::vector<double> Cdf(const std::vector<double>& x) {
  std::vector<double> out(x.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    out[i] = acc;
  }
  return out;
}

bool IsDistribution(const std::vector<double>& x, double tol) {
  for (double v : x) {
    if (v < -tol || std::isnan(v)) return false;
  }
  return std::fabs(Sum(x) - 1.0) <= tol;
}

}  // namespace hist
}  // namespace numdist
