// Endian-stable byte IO: the primitives every wire layout in the library is
// built from. All multi-byte integers are little-endian on the wire
// regardless of host order; doubles travel as their IEEE-754 bit pattern
// (exact — encode/decode round-trips are bit-identical, never lossy).
//
// ByteWriter appends to a caller-owned std::string; ByteReader consumes a
// read-only byte span with strict bounds checking — every underflow is a
// typed OutOfRange error ("truncated"), never UB. Frame-level concerns
// (magic, versioning, payload layouts) live above this, in src/wire/.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "common/result.h"

namespace numdist {

/// \brief Little-endian append-only byte sink.
class ByteWriter {
 public:
  /// Appends to `*out` (not owned, must outlive the writer).
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLittleEndian(v); }
  void PutU32(uint32_t v) { PutLittleEndian(v); }
  void PutU64(uint64_t v) { PutLittleEndian(v); }
  void PutI64(int64_t v) { PutLittleEndian(static_cast<uint64_t>(v)); }
  /// Writes the IEEE-754 bit pattern (exact round-trip).
  void PutF64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBytes(const void* data, size_t len) {
    out_->append(static_cast<const char*>(data), len);
  }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    out_->append(buf, sizeof(T));
  }

  std::string* out_;
};

/// \brief Strict little-endian byte source over a borrowed span.
///
/// Every read is bounds-checked; reading past the end returns
/// OutOfRange("truncated ...") with the offset, so malformed or cut-off
/// input surfaces as a typed error at the exact failure point.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}
  /// Convenience view over string bytes (no copy).
  explicit ByteReader(std::string_view data)
      : data_(reinterpret_cast<const uint8_t*>(data.data()), data.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<uint8_t> U8() {
    NUMDIST_RETURN_NOT_OK(Require(1));
    return data_[pos_++];
  }
  Result<uint16_t> U16() { return LittleEndian<uint16_t>(); }
  Result<uint32_t> U32() { return LittleEndian<uint32_t>(); }
  Result<uint64_t> U64() { return LittleEndian<uint64_t>(); }
  Result<int64_t> I64() {
    Result<uint64_t> v = U64();
    if (!v.ok()) return v.status();
    return static_cast<int64_t>(*v);
  }
  /// Reads an IEEE-754 bit pattern written by ByteWriter::PutF64.
  Result<double> F64() {
    Result<uint64_t> bits = U64();
    if (!bits.ok()) return bits.status();
    double v = 0.0;
    std::memcpy(&v, &*bits, sizeof(v));
    return v;
  }
  Status Bytes(void* dst, size_t len) {
    NUMDIST_RETURN_NOT_OK(Require(len));
    std::memcpy(dst, data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

 private:
  /// OK iff `len` more bytes are available; typed truncation error otherwise.
  Status Require(size_t len) const {
    if (remaining() < len) {
      return Status::OutOfRange(
          "truncated input: need " + std::to_string(len) + " byte(s) at "
          "offset " + std::to_string(pos_) + ", have " +
          std::to_string(remaining()));
    }
    return Status::OK();
  }

  template <typename T>
  Result<T> LittleEndian() {
    NUMDIST_RETURN_NOT_OK(Require(sizeof(T)));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace numdist
