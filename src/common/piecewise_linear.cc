#include "common/piecewise_linear.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace numdist {

Result<PiecewiseLinear> PiecewiseLinear::Make(std::vector<double> xs,
                                              std::vector<double> ys) {
  if (xs.size() < 2) {
    return Status::InvalidArgument("PiecewiseLinear needs >= 2 knots");
  }
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("knot/value size mismatch");
  }
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    if (!(xs[i] < xs[i + 1])) {
      return Status::InvalidArgument("knots must be strictly increasing");
    }
  }
  for (double y : ys) {
    if (!std::isfinite(y)) {
      return Status::InvalidArgument("knot values must be finite");
    }
  }
  return PiecewiseLinear(std::move(xs), std::move(ys));
}

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  const size_t k = xs_.size();
  cum_.assign(k, 0.0);
  cum2_.assign(k, 0.0);
  for (size_t i = 0; i + 1 < k; ++i) {
    const double h = xs_[i + 1] - xs_[i];
    const double m = (ys_[i + 1] - ys_[i]) / h;
    cum_[i + 1] = cum_[i] + ys_[i] * h + 0.5 * m * h * h;
    cum2_[i + 1] = cum2_[i] + cum_[i] * h + 0.5 * ys_[i] * h * h +
                   m * h * h * h / 6.0;
  }
}

size_t PiecewiseLinear::SegmentOf(double x) const {
  // Largest i with xs_[i] <= x; callers guarantee xs_.front() <= x <= back().
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  size_t i = static_cast<size_t>(it - xs_.begin());
  if (i == 0) return 0;
  i -= 1;
  return std::min(i, xs_.size() - 2);
}

double PiecewiseLinear::Evaluate(double x) const {
  if (x < xs_.front() || x > xs_.back()) return 0.0;
  const size_t i = SegmentOf(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  return ys_[i] + (ys_[i + 1] - ys_[i]) * t;
}

double PiecewiseLinear::Antiderivative(double x) const {
  if (x <= xs_.front()) return 0.0;
  if (x >= xs_.back()) return cum_.back();
  const size_t i = SegmentOf(x);
  const double h = xs_[i + 1] - xs_[i];
  const double m = (ys_[i + 1] - ys_[i]) / h;
  const double t = x - xs_[i];
  return cum_[i] + ys_[i] * t + 0.5 * m * t * t;
}

double PiecewiseLinear::SecondAntiderivative(double x) const {
  if (x <= xs_.front()) return 0.0;
  if (x >= xs_.back()) {
    return cum2_.back() + cum_.back() * (x - xs_.back());
  }
  const size_t i = SegmentOf(x);
  const double h = xs_[i + 1] - xs_[i];
  const double m = (ys_[i + 1] - ys_[i]) / h;
  const double t = x - xs_[i];
  return cum2_[i] + cum_[i] * t + 0.5 * ys_[i] * t * t + m * t * t * t / 6.0;
}

double PiecewiseLinear::IntegralBetween(double a, double b) const {
  assert(a <= b);
  return Antiderivative(b) - Antiderivative(a);
}

double PiecewiseLinear::TotalIntegral() const { return cum_.back(); }

double PiecewiseLinear::RectangleConvolutionIntegral(double l, double r,
                                                     double a,
                                                     double b) const {
  // ∫_a^b ∫_l^r f(u - v) du dv
  //   = ∫_a^b [F(r - v) - F(l - v)] dv
  //   = [G(r - a) - G(r - b)] - [G(l - a) - G(l - b)].
  assert(l <= r && a <= b);
  return (SecondAntiderivative(r - a) - SecondAntiderivative(r - b)) -
         (SecondAntiderivative(l - a) - SecondAntiderivative(l - b));
}

double PiecewiseLinear::MinValue() const {
  return *std::min_element(ys_.begin(), ys_.end());
}

double PiecewiseLinear::MaxValue() const {
  return *std::max_element(ys_.begin(), ys_.end());
}

double PiecewiseLinear::SampleDensity(double lo, double hi, Rng& rng) const {
  assert(lo < hi);
  const double flo = Antiderivative(lo);
  const double fhi = Antiderivative(hi);
  const double total = fhi - flo;
  assert(total > 0.0);
  const double target = flo + rng.Uniform() * total;

  // Locate the knot segment whose cumulative range contains `target`.
  // F is non-decreasing (density must be >= 0 where sampled).
  auto it = std::upper_bound(cum_.begin(), cum_.end(), target);
  size_t i = (it == cum_.begin()) ? 0 : static_cast<size_t>(it - cum_.begin()) - 1;
  i = std::min(i, xs_.size() - 2);

  const double h = xs_[i + 1] - xs_[i];
  const double m = (ys_[i + 1] - ys_[i]) / h;
  const double rem = target - cum_[i];
  double t;
  if (std::fabs(m) < 1e-14) {
    t = (ys_[i] > 0.0) ? rem / ys_[i] : 0.5 * h;
  } else {
    // Solve ys_[i]*t + m*t^2/2 == rem for t in [0, h].
    const double disc = ys_[i] * ys_[i] + 2.0 * m * rem;
    const double root = std::sqrt(std::max(0.0, disc));
    t = (-ys_[i] + root) / m;
    if (t < 0.0 || t > h) t = (-ys_[i] - root) / m;
  }
  t = std::clamp(t, 0.0, h);
  return std::clamp(xs_[i] + t, lo, hi);
}

}  // namespace numdist
