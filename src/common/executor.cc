#include "common/executor.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace numdist {

size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

// One ParallelFor call. Task indices live in per-participant [begin, end)
// ranges packed into one atomic each (begin in the high 32 bits, end in the
// low 32), so pop-front and steal-back are single CAS operations and a
// torn begin/end pair can never be observed.
struct Executor::Job {
  static uint64_t Pack(uint64_t begin, uint64_t end) {
    return (begin << 32) | end;
  }
  static uint32_t Begin(uint64_t packed) {
    return static_cast<uint32_t>(packed >> 32);
  }
  static uint32_t End(uint64_t packed) {
    return static_cast<uint32_t>(packed & 0xffffffffu);
  }

  explicit Job(size_t participants) : ranges(participants) {}

  size_t n = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;
  // Dense participant slots; a joiner takes the next one. Once all slots
  // are taken (or the work is gone) the job stops admitting helpers.
  std::atomic<size_t> next_slot{0};
  std::vector<std::atomic<uint64_t>> ranges;
  std::atomic<size_t> completed{0};

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;

  // Pops one task off the front of `slot`'s own range; SIZE_MAX when empty.
  size_t PopOwn(size_t slot) {
    std::atomic<uint64_t>& range = ranges[slot];
    uint64_t cur = range.load(std::memory_order_relaxed);
    for (;;) {
      const uint32_t begin = Begin(cur);
      const uint32_t end = End(cur);
      if (begin >= end) return SIZE_MAX;
      if (range.compare_exchange_weak(cur, Pack(begin + 1, end),
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return begin;
      }
    }
  }

  // Steals the back half of the largest remaining victim range into
  // `slot`'s own (empty) range; false when no victim has work left.
  bool Steal(size_t slot) {
    const size_t participants = ranges.size();
    size_t victim = SIZE_MAX;
    uint32_t victim_size = 0;
    for (size_t v = 0; v < participants; ++v) {
      if (v == slot) continue;
      const uint64_t cur = ranges[v].load(std::memory_order_relaxed);
      const uint32_t size = End(cur) - std::min(Begin(cur), End(cur));
      if (size > victim_size) {
        victim_size = size;
        victim = v;
      }
    }
    if (victim == SIZE_MAX) return false;
    std::atomic<uint64_t>& range = ranges[victim];
    uint64_t cur = range.load(std::memory_order_relaxed);
    for (;;) {
      const uint32_t begin = Begin(cur);
      const uint32_t end = End(cur);
      if (begin >= end) return false;
      // Floor split: the victim keeps the front half, and a single-task
      // range is taken WHOLE — a round-up split would "steal" the empty
      // back of a 1-task range forever when that range's slot has no
      // active owner (e.g. every worker was busy and never joined).
      const uint32_t mid = begin + (end - begin) / 2;
      if (range.compare_exchange_weak(cur, Pack(begin, mid),
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        ranges[slot].store(Pack(mid, end), std::memory_order_release);
        return true;
      }
    }
  }

  // Runs tasks as participant `slot` until the job has no takeable work.
  void Participate(size_t slot) {
    size_t ran = 0;
    for (;;) {
      const size_t task = PopOwn(slot);
      if (task == SIZE_MAX) {
        if (Steal(slot)) continue;
        break;
      }
      (*fn)(task, slot);
      ++ran;
    }
    if (ran == 0) return;
    if (completed.fetch_add(ran, std::memory_order_acq_rel) + ran == n) {
      std::lock_guard<std::mutex> lock(done_mu);
      done = true;
      done_cv.notify_all();
    }
  }

};

Executor::Executor(size_t threads) {
  const size_t resolved = ResolveThreadCount(threads);
  workers_.reserve(resolved - 1);
  for (size_t w = 0; w + 1 < resolved; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& th : workers_) th.join();
}

Executor& Executor::Shared() {
  static Executor executor(0);
  return executor;
}

void Executor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !open_jobs_.empty(); });
    if (stop_) return;
    std::shared_ptr<Job> job = open_jobs_.front();
    const size_t slot = job->next_slot.fetch_add(1, std::memory_order_acq_rel);
    const bool admitted = slot < job->ranges.size();
    if (!admitted || slot + 1 == job->ranges.size()) {
      // Fully subscribed: retire the job from the open list. Late workers
      // will see the next job (or sleep); the job object stays alive
      // through the shared_ptr of everyone already participating.
      if (!open_jobs_.empty() && open_jobs_.front() == job) {
        open_jobs_.pop_front();
      }
    }
    if (!admitted) continue;
    lock.unlock();
    job->Participate(slot);
    lock.lock();
    // Work may be drained while more jobs wait; loop around.
  }
}

void Executor::ParallelFor(
    size_t n, size_t max_parallelism,
    const std::function<void(size_t task, size_t slot)>& fn) {
  if (n == 0) return;
  assert(n < (uint64_t{1} << 32) && "ParallelFor task count exceeds 2^32");
  const size_t participants = MaxParticipants(n, max_parallelism);
  if (participants <= 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  auto job = std::make_shared<Job>(participants);
  job->n = n;
  job->fn = &fn;
  // Contiguous initial split; stealing rebalances from here.
  for (size_t p = 0; p < participants; ++p) {
    const uint64_t begin = n * p / participants;
    const uint64_t end = n * (p + 1) / participants;
    job->ranges[p].store(Job::Pack(begin, end), std::memory_order_relaxed);
  }

  // The caller is always participant 0; workers join behind it.
  const size_t caller_slot =
      job->next_slot.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_jobs_.push_back(job);
  }
  cv_.notify_all();

  job->Participate(caller_slot);

  // The caller found no more takeable work; tasks stolen by workers may
  // still be running. Wait for the exact completion count.
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] { return job->done; });
  }

  // Drop the job from the open list if no worker retired it (e.g. every
  // worker was busy elsewhere and never joined).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = open_jobs_.begin(); it != open_jobs_.end(); ++it) {
      if (*it == job) {
        open_jobs_.erase(it);
        break;
      }
    }
  }
}

}  // namespace numdist
