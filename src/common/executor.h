// Persistent work-stealing executor for the library's fan-out loops.
//
// Before this layer, every parallel call site (sharded accumulation, the
// trial runner, the scenario engine) spawned and joined its own
// std::thread fleet per call — at one thread-create syscall per worker per
// call, that is the dominant fixed cost of small parallel regions. The
// Executor keeps one fleet of workers alive for the process and hands them
// index ranges instead.
//
// Scheduling: each ParallelFor splits [0, n) into one contiguous range per
// participant. A participant pops tasks from the FRONT of its own range
// and, when empty, STEALS the back half of a victim's remaining range —
// classic range stealing, so load imbalance (e.g. one slow shard) migrates
// work without any per-task queue traffic.
//
// Determinism contract: the executor assigns WORK, never SEMANTICS. Which
// participant runs task i varies run to run; callers must key all state by
// the task index (per-(seed,shard) RNG streams, per-trial outputs) or fold
// into per-slot accumulators whose merge is exact and commutative (all
// built-in integer accumulators are). Under that discipline — the same one
// the previous spawn/join fleets required — results are bit-identical for
// any worker count, pool reuse, or stealing schedule
// (tests/executor_test.cc).
//
// Nesting is safe: a task may itself call ParallelFor (the trial runner's
// per-trial shard loops do). The nested caller always participates in its
// own job until the job's tasks are exhausted, so progress never depends
// on free workers; idle workers join whichever jobs are open.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace numdist {

/// The library-wide thread-count convention: 0 means "use the hardware",
/// anything else is taken literally. This is the single home of the
/// hardware_concurrency clamp every layer and --threads flag previously
/// duplicated.
size_t ResolveThreadCount(size_t requested);

/// \brief Persistent work-stealing thread pool.
class Executor {
 public:
  /// Creates a pool with `threads` total parallelism (the calling thread
  /// counts as one, so `threads - 1` workers are spawned). 0 resolves to
  /// the hardware concurrency.
  explicit Executor(size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool, sized to the hardware on first use. All
  /// library call sites share it; per-call `threads` options become the
  /// max_parallelism cap below instead of private thread fleets.
  static Executor& Shared();

  /// Maximum concurrent participants (workers + the caller).
  size_t slots() const { return workers_.size() + 1; }

  /// Number of participants a ParallelFor(n, max_parallelism, fn) call can
  /// admit: every `slot` passed to fn is strictly below this. The single
  /// source of truth for sizing per-slot state (local accumulators).
  size_t MaxParticipants(size_t n, size_t max_parallelism) const {
    size_t participants = std::min(n, slots());
    if (max_parallelism != 0) {
      participants = std::min(participants, max_parallelism);
    }
    return participants;
  }

  /// Runs fn(task, slot) for every task in [0, n), then returns. At most
  /// min(slots(), max_parallelism, n) participants join; `slot` is a dense
  /// id in that range, stable for one participant within one call — use it
  /// to index per-participant state (local accumulators). max_parallelism
  /// of 0 means "no extra cap". fn must be invocable concurrently.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t task, size_t slot)>& fn);

 private:
  struct Job;

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> open_jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace numdist
