#include "stats/conformance.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "stats/special.h"

namespace numdist {
namespace stats {

Result<GofResult> ChiSquareGof(const std::vector<uint64_t>& observed,
                               const std::vector<double>& expected_probs,
                               double min_expected) {
  if (observed.size() != expected_probs.size()) {
    return Status::InvalidArgument("ChiSquareGof: size mismatch");
  }
  if (observed.size() < 2) {
    return Status::InvalidArgument("ChiSquareGof: need >= 2 cells");
  }
  uint64_t n = 0;
  for (uint64_t c : observed) n += c;
  if (n == 0) return Status::InvalidArgument("ChiSquareGof: no observations");
  double prob_sum = 0.0;
  for (double p : expected_probs) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return Status::InvalidArgument("ChiSquareGof: bad expected probability");
    }
    prob_sum += p;
  }
  if (std::fabs(prob_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        "ChiSquareGof: expected probabilities must sum to 1");
  }

  // Pool cells with expected count < min_expected into one rest cell so the
  // asymptotic chi-square distribution of the statistic holds.
  const double dn = static_cast<double>(n);
  double stat = 0.0;
  size_t kept = 0;
  double pooled_expected = 0.0;
  uint64_t pooled_observed = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * dn;
    if (expected < min_expected) {
      pooled_expected += expected;
      pooled_observed += observed[i];
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
    ++kept;
  }
  size_t cells = kept;
  if (pooled_expected > 0.0 || pooled_observed > 0) {
    if (pooled_expected <= 0.0) {
      // Mass observed where the model says "impossible": certain rejection.
      GofResult impossible;
      impossible.statistic = std::numeric_limits<double>::infinity();
      impossible.p_value = 0.0;
      impossible.df = cells;
      impossible.pooled_cells = cells + 1;
      return impossible;
    }
    const double diff = static_cast<double>(pooled_observed) - pooled_expected;
    stat += diff * diff / pooled_expected;
    ++cells;
  }
  if (cells < 2) {
    return Status::InvalidArgument(
        "ChiSquareGof: fewer than 2 cells after pooling; raise N");
  }

  GofResult result;
  result.statistic = stat;
  result.df = cells - 1;
  result.pooled_cells = cells;
  result.p_value = ChiSquareSurvival(static_cast<double>(result.df), stat);
  return result;
}

double BinomialTwoSidedP(uint64_t k, uint64_t n, double p) {
  const double lower = BinomialCdf(k, n, p);
  const double upper = BinomialSurvival(k, n, p);
  return std::min(1.0, 2.0 * std::min(lower, upper));
}

double DkwEpsilon(uint64_t n, double alpha) {
  return std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(n)));
}

double HistogramKs(const std::vector<uint64_t>& observed,
                   const std::vector<double>& expected_probs) {
  uint64_t n = 0;
  for (uint64_t c : observed) n += c;
  const double dn = static_cast<double>(n);
  double cum_obs = 0.0;
  double cum_exp = 0.0;
  double ks = 0.0;
  const size_t cells = std::min(observed.size(), expected_probs.size());
  for (size_t j = 0; j < cells; ++j) {
    cum_obs += static_cast<double>(observed[j]) / dn;
    cum_exp += expected_probs[j];
    ks = std::max(ks, std::fabs(cum_obs - cum_exp));
  }
  return ks;
}

double EmAgreementRadius(uint64_t n, double tol_a, double tol_b,
                         double safety) {
  return safety *
         std::sqrt(2.0 * (tol_a + tol_b) / static_cast<double>(n));
}

double PerAssertionAlpha(double test_alpha, size_t assertions) {
  return test_alpha / static_cast<double>(std::max<size_t>(assertions, 1));
}

uint64_t SampleBudget(uint64_t full_n, uint64_t min_n) {
  double scale = 1.0;
  if (const char* env = std::getenv("NUMDIST_STAT_SAMPLE_SCALE")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0 && parsed <= 1.0) scale = parsed;
  }
  const uint64_t scaled =
      static_cast<uint64_t>(std::llround(static_cast<double>(full_n) * scale));
  return std::max(std::min(scaled, full_n), std::min(min_n, full_n));
}

}  // namespace stats
}  // namespace numdist
