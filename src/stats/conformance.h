// Statistical conformance library: acceptance tests for randomized
// mechanisms and reconstruction estimators with *explicit* false-positive
// budgets, replacing fixed-seed point tolerances. Every tolerance returned
// here is computed from (sample size, alpha) by a documented bound — see
// docs/STATISTICAL_TESTING.md for the derivations.
//
// The three families:
//  - Frequency conformance: Pearson chi-square GOF against the mechanism's
//    analytic channel distribution (cells pooled to keep the asymptotic
//    chi-square approximation honest).
//  - Channel-probability conformance: exact binomial two-sided tests on
//    per-event probabilities (GRR truth retention, OUE bit flips, ...).
//  - CDF conformance: DKW-based KS / Wasserstein acceptance radii for the
//    empirical report distribution against an analytic CDF, and
//    likelihood-gap agreement radii for comparing two EM fixed points.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace numdist {
namespace stats {

/// Outcome of a goodness-of-fit test.
struct GofResult {
  double statistic = 0.0;  ///< Pearson X^2 after pooling.
  double p_value = 1.0;    ///< Chi-square survival at the statistic.
  size_t df = 0;           ///< Degrees of freedom (pooled cells - 1).
  size_t pooled_cells = 0; ///< Cells after pooling.
};

/// Pearson chi-square goodness-of-fit of observed counts against expected
/// probabilities. Cells whose expected count is below `min_expected` are
/// pooled into a single rest cell (standard Cochran condition), keeping the
/// chi-square approximation valid in sparse tails (e.g. GRR's q-cells at
/// small N). Errors if sizes mismatch, probabilities do not sum to ~1, or
/// fewer than two cells survive pooling.
Result<GofResult> ChiSquareGof(const std::vector<uint64_t>& observed,
                               const std::vector<double>& expected_probs,
                               double min_expected = 5.0);

/// Exact two-sided binomial test: p-value for observing `k` successes in
/// `n` trials under success probability `p` (2 * min tail, clamped to 1).
double BinomialTwoSidedP(uint64_t k, uint64_t n, double p);

/// Dvoretzky-Kiefer-Wolfowitz acceptance radius: with probability >= 1-alpha
/// the empirical CDF of n iid samples stays within this sup-distance of the
/// true CDF. Valid for the bucketized CDF too (coarsening can only shrink
/// the sup), and — on a domain of length 1 — for the Wasserstein-1 distance,
/// since W1 = integral |F_n - F| <= sup |F_n - F|.
double DkwEpsilon(uint64_t n, double alpha);

/// KS distance between a report histogram and expected bucket probabilities:
/// max_j |cumsum(observed)/N - cumsum(expected)|.
double HistogramKs(const std::vector<uint64_t>& observed,
                   const std::vector<double>& expected_probs);

/// Acceptance radius for the report-space distance between two near-optimal
/// EM fixed points of the same multinomial likelihood. Stopping at
/// log-likelihood improvement < tol leaves each iterate within ~tol of the
/// maximum; a Pinsker-style argument then bounds the total-variation (and
/// hence KS) distance between their fitted report distributions by
/// sqrt(2 (tol_a + tol_b) / n). `safety` absorbs the slack in the
/// near-optimality step (see docs/STATISTICAL_TESTING.md §4).
double EmAgreementRadius(uint64_t n, double tol_a, double tol_b,
                         double safety = 5.0);

/// Per-assertion alpha for a test making `assertions` independent
/// comparisons under a whole-test false-positive budget `test_alpha`
/// (Bonferroni split).
double PerAssertionAlpha(double test_alpha, size_t assertions);

/// Whole-test false-positive budget used by the `statistical` ctest tier
/// (documented acceptance criterion: <= 1e-6 per test).
inline constexpr double kTestAlpha = 1e-6;

/// Sample budget honoring the NUMDIST_STAT_SAMPLE_SCALE environment knob:
/// returns round(full_n * scale) clamped to >= min_n, where scale is read
/// from the environment (defaults to 1, clamped into (0, 1]). CI sanitizer
/// jobs set the knob below 1 to trade statistical resolution for runtime;
/// tests recompute their acceptance radii from the returned n, so the
/// false-positive budget is unaffected.
uint64_t SampleBudget(uint64_t full_n, uint64_t min_n = 2000);

}  // namespace stats
}  // namespace numdist
