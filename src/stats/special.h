// Special functions backing the statistical conformance library: regularized
// incomplete gamma and beta, and the exact distribution functions (chi-square
// survival, binomial CDF/survival) the acceptance tests compute p-values
// with. Implementations follow the classic series / continued-fraction
// expansions (Abramowitz & Stegun 6.5, 26.5); accuracy is ~1e-12 relative
// over the ranges the tests use, verified in tests/stats_test.cc.
#pragma once

#include <cstdint>

namespace numdist {
namespace stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// Requires a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Regularized incomplete beta I_x(a, b). Requires a, b > 0, x in [0, 1].
double RegularizedBeta(double a, double b, double x);

/// Chi-square survival function P[X >= x] for `df` degrees of freedom
/// (= Q(df/2, x/2)). Accurate in the deep tail, where the conformance
/// tests compare against per-test alphas of 1e-7 and below.
double ChiSquareSurvival(double df, double x);

/// Exact binomial CDF P[X <= k] for X ~ Binomial(n, p).
double BinomialCdf(uint64_t k, uint64_t n, double p);

/// Exact binomial survival P[X >= k] for X ~ Binomial(n, p).
double BinomialSurvival(uint64_t k, uint64_t n, double p);

}  // namespace stats
}  // namespace numdist
