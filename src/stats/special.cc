#include "stats/special.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace numdist {
namespace stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEps = 1e-15;
// Smallest representable scale guard for the continued fractions (Lentz).
constexpr double kTiny = 1e-300;

// Lower incomplete gamma by its power series: P(a, x) converges fast for
// x < a + 1 (A&S 6.5.29).
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper incomplete gamma by modified-Lentz continued fraction: Q(a, x)
// converges fast for x >= a + 1 (A&S 6.5.31).
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for the incomplete beta (A&S 26.5.8, modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double dm = static_cast<double>(m);
    const double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double RegularizedBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0 && x >= 0.0 && x <= 1.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double front = std::exp(std::lgamma(a + b) - std::lgamma(a) -
                                std::lgamma(b) + a * std::log(x) +
                                b * std::log1p(-x));
  // Use the expansion on the side where the continued fraction converges
  // fast (A&S 26.5.8 symmetry).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double ChiSquareSurvival(double df, double x) {
  assert(df > 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(0.5 * df, 0.5 * x);
}

double BinomialCdf(uint64_t k, uint64_t n, double p) {
  assert(p >= 0.0 && p <= 1.0);
  if (k >= n) return 1.0;
  // P[X <= k] = I_{1-p}(n - k, k + 1).
  return RegularizedBeta(static_cast<double>(n - k), static_cast<double>(k + 1),
                         1.0 - p);
}

double BinomialSurvival(uint64_t k, uint64_t n, double p) {
  assert(p >= 0.0 && p <= 1.0);
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // P[X >= k] = I_p(k, n - k + 1).
  return RegularizedBeta(static_cast<double>(k), static_cast<double>(n - k + 1),
                         p);
}

}  // namespace stats
}  // namespace numdist
