// Uniform batched client/server facade over the categorical frequency
// oracles. Every oracle family reduces to the same three-stage contract the
// protocol layer builds on: perturb a batch of values into a wire chunk,
// fold chunks into a mergeable FoSketch, invert the sketch into frequency
// estimates. This is what lets one CFO binning protocol run over GRR, OLH,
// OUE, or the variance-adaptive dispatcher without per-oracle plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/sketch.h"

namespace numdist {

/// Which oracle backs a BatchedFo.
enum class FoKind {
  kAdaptive,  ///< GRR or OLH, whichever has lower variance (paper §2.1).
  kGrr,
  kOlh,
  kOue,
};

/// Parses "adaptive" / "grr" / "olh" / "oue"; false on unknown names.
bool ParseFoKind(const std::string& name, FoKind* kind);

/// One client shard's perturbed reports. `reports` carries GRR/OLH/adaptive
/// wire reports; OUE instead appends its d-bit vectors to `bits` (flattened,
/// stride = domain). `n` counts the users in the chunk either way.
struct FoChunk {
  std::vector<FoReport> reports;
  std::vector<uint8_t> bits;
  uint64_t n = 0;
};

/// \brief One frequency oracle behind the batched contract.
class BatchedFo {
 public:
  virtual ~BatchedFo() = default;

  /// Categorical domain size.
  virtual size_t domain() const = 0;

  /// Client side: perturbs every value in {0..domain-1} and appends the
  /// reports to `*chunk`.
  virtual void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                            FoChunk* chunk) const = 0;

  /// Empty aggregation state.
  virtual FoSketch MakeSketch() const = 0;

  /// Server side: folds a chunk into the sketch.
  virtual Status Absorb(const FoChunk& chunk, FoSketch* sketch) const = 0;

  /// Unbiased frequency estimates from an absorbed sketch.
  virtual std::vector<double> Estimate(const FoSketch& sketch) const = 0;
};

/// Builds the batched facade for one oracle family.
/// Requires epsilon > 0 and domain >= 2.
Result<std::unique_ptr<BatchedFo>> MakeBatchedFo(FoKind kind, double epsilon,
                                                 size_t domain);

}  // namespace numdist
