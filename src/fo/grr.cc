#include "fo/grr.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kernels/kernels.h"

namespace numdist {

Result<Grr> Grr::Make(double epsilon, size_t domain) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("GRR: epsilon must be positive and finite");
  }
  if (domain < 2) {
    return Status::InvalidArgument("GRR: domain size must be >= 2");
  }
  if (domain > (1ULL << 31)) {
    return Status::InvalidArgument("GRR: domain too large");
  }
  return Grr(epsilon, domain);
}

Grr::Grr(double epsilon, size_t domain) : epsilon_(epsilon), domain_(domain) {
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(domain) - 1.0);
  q_ = 1.0 / (e + static_cast<double>(domain) - 1.0);
}

uint32_t Grr::Perturb(uint32_t v, Rng& rng) const {
  assert(v < domain_);
  if (rng.Bernoulli(p_)) return v;
  // Uniform over the d-1 other values: draw from [0, d-1) and skip v.
  uint32_t r = static_cast<uint32_t>(rng.UniformInt(domain_ - 1));
  return (r >= v) ? r + 1 : r;
}

void Grr::PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                       uint32_t* out) const {
#ifndef NDEBUG
  for (uint32_t v : values) assert(v < domain_);
#endif
  constexpr size_t kChunk = 512;
  double u[kChunk];
  const double inv_rest = 1.0 / (1.0 - p_);
  size_t i = 0;
  while (i < values.size()) {
    const size_t m = std::min(kChunk, values.size() - i);
    rng.FillUniform(u, m);
    kernels::GrrResponseMap(u, values.data() + i, out + i, m, p_, inv_rest,
                            static_cast<uint32_t>(domain_));
    i += m;
  }
}

std::vector<double> Grr::Estimate(const std::vector<uint32_t>& reports) const {
  std::vector<uint64_t> counts(domain_, 0);
  for (uint32_t r : reports) {
    assert(r < domain_);
    ++counts[r];
  }
  return EstimateFromCounts(counts, reports.size());
}

std::vector<double> Grr::EstimateFromCounts(
    const std::vector<uint64_t>& counts, size_t n) const {
  assert(counts.size() == domain_);
  return EstimateFromSketch(
      FoSketch{std::vector<int64_t>(counts.begin(), counts.end()), n});
}

void Grr::Absorb(uint32_t report, FoSketch* sketch) const {
  assert(report < domain_ && sketch->counts.size() == domain_);
  ++sketch->counts[report];
  ++sketch->n;
}

std::vector<double> Grr::EstimateFromSketch(const FoSketch& sketch) const {
  assert(sketch.counts.size() == domain_);
  std::vector<double> est(domain_, 0.0);
  if (sketch.n == 0) return est;
  const double denom = p_ - q_;
  for (size_t v = 0; v < domain_; ++v) {
    const double c = static_cast<double>(sketch.counts[v]) /
                     static_cast<double>(sketch.n);
    est[v] = (c - q_) / denom;
  }
  return est;
}

double Grr::Variance(double epsilon, size_t domain, size_t n) {
  const double e = std::exp(epsilon);
  return (static_cast<double>(domain) - 2.0 + e) /
         ((e - 1.0) * (e - 1.0) * static_cast<double>(n));
}

}  // namespace numdist
