// Wire and server-state primitives shared by every categorical frequency
// oracle (GRR, OLH, OUE, HRR, and the variance-adaptive dispatcher).
//
// The batched protocol split is: clients emit compact FoReport values, the
// aggregator folds them into an FoSketch (exact integer state, so shard
// merges are associative and bit-reproducible regardless of how reports
// were grouped across threads), and the oracle inverts the sketch into
// unbiased frequency estimates once at the end.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace numdist {

/// One perturbed report on the wire. The meaning of the fields is
/// oracle-specific:
///  - GRR: `value` is the perturbed category; `seed` unused.
///  - OLH: `seed` is the public hash seed, `value` the perturbed hash.
/// (HRR reports travel as HrrReport — the signed bit does not fit this
/// shape; see fo/hrr.h.)
struct FoReport {
  uint64_t seed = 0;
  uint32_t value = 0;
};

/// \brief Mergeable aggregation state of one frequency oracle.
///
/// `counts` semantics are oracle-specific (report counts for GRR, support
/// counts for OLH, per-bit ones for OUE, signed Hadamard correlations for
/// HRR) but always exact integers, so Merge is associative and commutative:
/// any sharding of the report stream yields the same final sketch.
struct FoSketch {
  std::vector<int64_t> counts;
  uint64_t n = 0;  ///< Reports absorbed.

  /// Adds another shard's state. Requires identical sketch shape.
  void Merge(const FoSketch& other) {
    assert(counts.size() == other.counts.size());
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    n += other.n;
  }
};

}  // namespace numdist
