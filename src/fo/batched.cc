#include "fo/batched.h"

#include <string>
#include <utility>

#include "fo/adaptive.h"
#include "fo/grr.h"
#include "fo/olh.h"
#include "fo/oue.h"

namespace numdist {

namespace {

// GRR, OLH, and the adaptive dispatcher all speak FoReport; AdaptiveFo
// already routes between the two plain oracles, so wrapping it (or a
// degenerate forced instance) covers three of the four kinds.
class AdaptiveBatchedFo final : public BatchedFo {
 public:
  explicit AdaptiveBatchedFo(AdaptiveFo fo) : fo_(std::move(fo)) {}

  size_t domain() const override { return fo_.domain(); }

  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    FoChunk* chunk) const override {
    const size_t old_size = chunk->reports.size();
    chunk->reports.resize(old_size + values.size());
    fo_.PerturbBatch(values, rng, chunk->reports.data() + old_size);
    chunk->n += values.size();
  }

  FoSketch MakeSketch() const override { return fo_.MakeSketch(); }

  Status Absorb(const FoChunk& chunk, FoSketch* sketch) const override {
    if (chunk.reports.size() != chunk.n || !chunk.bits.empty()) {
      return Status::InvalidArgument("BatchedFo: malformed report chunk");
    }
    // Reports come from untrusted clients: never index out of bounds on a
    // bad GRR category (OLH hashes are compared, never indexed), and
    // reject the whole chunk before folding anything so an error leaves
    // the sketch untouched.
    if (fo_.uses_grr()) {
      for (const FoReport& rep : chunk.reports) {
        if (rep.value >= fo_.domain()) {
          return Status::InvalidArgument("BatchedFo: report out of domain");
        }
      }
      for (const FoReport& rep : chunk.reports) fo_.Absorb(rep, sketch);
    } else {
      // OLH support counting dominates server cost; use the blocked path.
      fo_.olh().AbsorbBatch(std::span<const FoReport>(chunk.reports), sketch);
    }
    return Status::OK();
  }

  std::vector<double> Estimate(const FoSketch& sketch) const override {
    return fo_.EstimateFromSketch(sketch);
  }

 private:
  AdaptiveFo fo_;
};

class GrrBatchedFo final : public BatchedFo {
 public:
  explicit GrrBatchedFo(Grr grr) : grr_(std::move(grr)) {}

  size_t domain() const override { return grr_.domain(); }

  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    FoChunk* chunk) const override {
    const size_t old_size = chunk->reports.size();
    chunk->reports.resize(old_size + values.size());
    // Bulk map through the dispatched GRR kernel, then widen the raw
    // categories into the wire format.
    std::vector<uint32_t> raw(values.size());
    grr_.PerturbBatch(values, rng, raw.data());
    FoReport* out = chunk->reports.data() + old_size;
    for (size_t i = 0; i < raw.size(); ++i) out[i] = FoReport{0, raw[i]};
    chunk->n += values.size();
  }

  FoSketch MakeSketch() const override { return grr_.MakeSketch(); }

  Status Absorb(const FoChunk& chunk, FoSketch* sketch) const override {
    if (chunk.reports.size() != chunk.n || !chunk.bits.empty()) {
      return Status::InvalidArgument("BatchedFo: malformed report chunk");
    }
    // Validate the whole chunk before folding anything so an error leaves
    // the sketch untouched.
    for (const FoReport& rep : chunk.reports) {
      if (rep.value >= grr_.domain()) {
        return Status::InvalidArgument("BatchedFo: report out of domain");
      }
    }
    for (const FoReport& rep : chunk.reports) grr_.Absorb(rep.value, sketch);
    return Status::OK();
  }

  std::vector<double> Estimate(const FoSketch& sketch) const override {
    return grr_.EstimateFromSketch(sketch);
  }

 private:
  Grr grr_;
};

class OlhBatchedFo final : public BatchedFo {
 public:
  explicit OlhBatchedFo(Olh olh) : olh_(std::move(olh)) {}

  size_t domain() const override { return olh_.domain(); }

  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    FoChunk* chunk) const override {
    const size_t old_size = chunk->reports.size();
    chunk->reports.resize(old_size + values.size());
    olh_.PerturbBatch(values, rng, chunk->reports.data() + old_size);
    chunk->n += values.size();
  }

  FoSketch MakeSketch() const override { return olh_.MakeSketch(); }

  Status Absorb(const FoChunk& chunk, FoSketch* sketch) const override {
    if (chunk.reports.size() != chunk.n || !chunk.bits.empty()) {
      return Status::InvalidArgument("BatchedFo: malformed report chunk");
    }
    // Blocked batch absorb: the OLH support-count pass is the aggregator's
    // O(n * domain) hot loop, so hand the whole chunk down at once.
    olh_.AbsorbBatch(std::span<const FoReport>(chunk.reports), sketch);
    return Status::OK();
  }

  std::vector<double> Estimate(const FoSketch& sketch) const override {
    return olh_.EstimateFromSketch(sketch);
  }

 private:
  Olh olh_;
};

class OueBatchedFo final : public BatchedFo {
 public:
  explicit OueBatchedFo(Oue oue) : oue_(std::move(oue)) {}

  size_t domain() const override { return oue_.domain(); }

  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    FoChunk* chunk) const override {
    oue_.PerturbBatch(values, rng, &chunk->bits);
    chunk->n += values.size();
  }

  FoSketch MakeSketch() const override { return oue_.MakeSketch(); }

  Status Absorb(const FoChunk& chunk, FoSketch* sketch) const override {
    const size_t d = oue_.domain();
    if (chunk.bits.size() != chunk.n * d || !chunk.reports.empty()) {
      return Status::InvalidArgument("BatchedFo: malformed OUE chunk");
    }
    // Untrusted clients: a non-binary byte would silently inflate the ones
    // counts. Reject the whole chunk before folding anything.
    for (uint8_t bit : chunk.bits) {
      if (bit > 1) {
        return Status::InvalidArgument("BatchedFo: non-binary OUE bit");
      }
    }
    for (uint64_t u = 0; u < chunk.n; ++u) {
      for (size_t j = 0; j < d; ++j) {
        sketch->counts[j] += chunk.bits[u * d + j];
      }
    }
    sketch->n += chunk.n;
    return Status::OK();
  }

  std::vector<double> Estimate(const FoSketch& sketch) const override {
    return oue_.EstimateFromSketch(sketch);
  }

 private:
  Oue oue_;
};

}  // namespace

bool ParseFoKind(const std::string& name, FoKind* kind) {
  if (name == "adaptive") {
    *kind = FoKind::kAdaptive;
  } else if (name == "grr") {
    *kind = FoKind::kGrr;
  } else if (name == "olh") {
    *kind = FoKind::kOlh;
  } else if (name == "oue") {
    *kind = FoKind::kOue;
  } else {
    return false;
  }
  return true;
}

Result<std::unique_ptr<BatchedFo>> MakeBatchedFo(FoKind kind, double epsilon,
                                                 size_t domain) {
  switch (kind) {
    case FoKind::kAdaptive: {
      Result<AdaptiveFo> fo = AdaptiveFo::Make(epsilon, domain);
      if (!fo.ok()) return fo.status();
      return std::unique_ptr<BatchedFo>(
          new AdaptiveBatchedFo(std::move(fo).value()));
    }
    case FoKind::kGrr: {
      Result<Grr> grr = Grr::Make(epsilon, domain);
      if (!grr.ok()) return grr.status();
      return std::unique_ptr<BatchedFo>(new GrrBatchedFo(std::move(grr).value()));
    }
    case FoKind::kOlh: {
      Result<Olh> olh = Olh::Make(epsilon, domain);
      if (!olh.ok()) return olh.status();
      return std::unique_ptr<BatchedFo>(new OlhBatchedFo(std::move(olh).value()));
    }
    case FoKind::kOue: {
      Result<Oue> oue = Oue::Make(epsilon, domain);
      if (!oue.ok()) return oue.status();
      return std::unique_ptr<BatchedFo>(new OueBatchedFo(std::move(oue).value()));
    }
  }
  return Status::InvalidArgument("MakeBatchedFo: unknown oracle kind");
}

}  // namespace numdist
