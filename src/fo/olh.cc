#include "fo/olh.h"

#include <cassert>
#include <cmath>

#include "fo/hash.h"

namespace numdist {

Result<Olh> Olh::Make(double epsilon, size_t domain, uint32_t g) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("OLH: epsilon must be positive and finite");
  }
  if (domain < 2) {
    return Status::InvalidArgument("OLH: domain size must be >= 2");
  }
  if (g == 0) {
    g = static_cast<uint32_t>(std::lround(std::exp(epsilon))) + 1;
    if (g < 2) g = 2;
  }
  if (g < 2) return Status::InvalidArgument("OLH: g must be >= 2");
  return Olh(epsilon, domain, g);
}

Olh::Olh(double epsilon, size_t domain, uint32_t g)
    : epsilon_(epsilon), domain_(domain), g_(g) {
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(g) - 1.0);
}

OlhReport Olh::Perturb(uint32_t v, Rng& rng) const {
  assert(v < domain_);
  OlhReport report;
  report.seed = rng.Next();
  const uint32_t h = OlhHash(report.seed, v, g_);
  if (rng.Bernoulli(p_)) {
    report.y = h;
  } else {
    uint32_t r = static_cast<uint32_t>(rng.UniformInt(g_ - 1));
    report.y = (r >= h) ? r + 1 : r;
  }
  return report;
}

std::vector<uint64_t> Olh::SupportCounts(
    const std::vector<OlhReport>& reports) const {
  std::vector<uint64_t> counts(domain_, 0);
  for (const OlhReport& rep : reports) {
    for (size_t v = 0; v < domain_; ++v) {
      if (OlhHash(rep.seed, v, g_) == rep.y) ++counts[v];
    }
  }
  return counts;
}

std::vector<double> Olh::Estimate(const std::vector<OlhReport>& reports) const {
  FoSketch sketch = MakeSketch();
  for (const OlhReport& rep : reports) Absorb(rep, &sketch);
  return EstimateFromSketch(sketch);
}

void Olh::Absorb(const OlhReport& report, FoSketch* sketch) const {
  assert(sketch->counts.size() == domain_);
  for (size_t v = 0; v < domain_; ++v) {
    if (OlhHash(report.seed, v, g_) == report.y) ++sketch->counts[v];
  }
  ++sketch->n;
}

std::vector<double> Olh::EstimateFromSketch(const FoSketch& sketch) const {
  assert(sketch.counts.size() == domain_);
  std::vector<double> est(domain_, 0.0);
  if (sketch.n == 0) return est;
  const double one_over_g = 1.0 / static_cast<double>(g_);
  const double denom = p_ - one_over_g;
  for (size_t v = 0; v < domain_; ++v) {
    const double c = static_cast<double>(sketch.counts[v]) /
                     static_cast<double>(sketch.n);
    est[v] = (c - one_over_g) / denom;
  }
  return est;
}

double Olh::Variance(double epsilon, size_t n) {
  const double e = std::exp(epsilon);
  return 4.0 * e / ((e - 1.0) * (e - 1.0) * static_cast<double>(n));
}

}  // namespace numdist
