#include "fo/olh.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fo/hash.h"

namespace numdist {

namespace {

inline uint32_t PerturbedHash(const OlhReport& rep) { return rep.y; }
inline uint32_t PerturbedHash(const FoReport& rep) { return rep.value; }

// Blocked support counting shared by both wire formats. Loads a block of
// reports into locals and sweeps the value axis once per block: counts[] is
// walked contiguously, the per-value mix multiply is hoisted, and the
// fixed-trip report-inner loop unrolls/vectorizes. Exactly equivalent to
// absorbing the reports one at a time.
template <typename Report>
void AbsorbBlocked(std::span<const Report> reports, size_t domain, uint32_t g,
                   FoSketch* sketch) {
  assert(sketch->counts.size() == domain);
  constexpr size_t kBlock = 8;
  int64_t* counts = sketch->counts.data();
  uint64_t seeds[kBlock];
  uint32_t ys[kBlock];
  size_t r = 0;
  for (; r + kBlock <= reports.size(); r += kBlock) {
    for (size_t k = 0; k < kBlock; ++k) {
      seeds[k] = reports[r + k].seed;
      ys[k] = PerturbedHash(reports[r + k]);
    }
    for (size_t v = 0; v < domain; ++v) {
      const uint64_t mixed = static_cast<uint64_t>(v) * kOlhValueMix;
      int64_t hits = 0;
      for (size_t k = 0; k < kBlock; ++k) {
        hits += OlhHashPremixed(seeds[k], mixed, g) == ys[k] ? 1 : 0;
      }
      counts[v] += hits;
    }
  }
  for (; r < reports.size(); ++r) {
    const uint64_t seed = reports[r].seed;
    const uint32_t y = PerturbedHash(reports[r]);
    for (size_t v = 0; v < domain; ++v) {
      if (OlhHash(seed, v, g) == y) ++counts[v];
    }
  }
  sketch->n += reports.size();
}

}  // namespace

Result<Olh> Olh::Make(double epsilon, size_t domain, uint32_t g) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("OLH: epsilon must be positive and finite");
  }
  if (domain < 2) {
    return Status::InvalidArgument("OLH: domain size must be >= 2");
  }
  if (g == 0) {
    g = static_cast<uint32_t>(std::lround(std::exp(epsilon))) + 1;
    if (g < 2) g = 2;
  }
  if (g < 2) return Status::InvalidArgument("OLH: g must be >= 2");
  return Olh(epsilon, domain, g);
}

Olh::Olh(double epsilon, size_t domain, uint32_t g)
    : epsilon_(epsilon), domain_(domain), g_(g) {
  const double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(g) - 1.0);
}

OlhReport Olh::Perturb(uint32_t v, Rng& rng) const {
  assert(v < domain_);
  OlhReport report;
  report.seed = rng.Next();
  const uint32_t h = OlhHash(report.seed, v, g_);
  if (rng.Bernoulli(p_)) {
    report.y = h;
  } else {
    uint32_t r = static_cast<uint32_t>(rng.UniformInt(g_ - 1));
    report.y = (r >= h) ? r + 1 : r;
  }
  return report;
}

void Olh::PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                       FoReport* out) const {
  const uint32_t g = g_;
  // Integer accept test on the draw's top 53 bits: m < ceil(p * 2^53) is
  // EXACTLY the event Uniform() < p (both count the m with m * 2^-53 < p),
  // with no double compare in the loop. A rejected draw's residual
  // m - T is uniform on [0, rest) and maps onto the g-1 other buckets with
  // one double multiply (bias ~2^-52, far below the conformance tier's
  // detection radius). Everything selects through masks — no
  // data-dependent branch, so the ~50/50 accept split costs no
  // mispredicts.
  const uint64_t accept_threshold =
      static_cast<uint64_t>(std::ceil(p_ * 0x1.0p53));
  const uint64_t rest = (uint64_t{1} << 53) - accept_threshold;
  // rest == 0 (p within 2^-53 of 1, i.e. an absurd epsilon) means a reject
  // can never be selected; any finite scale keeps the masked math defined.
  const double reject_scale =
      rest == 0 ? 0.0
                : static_cast<double>(g - 1) / static_cast<double>(rest);
  constexpr size_t kChunk = 256;
  uint64_t seeds[kChunk];
  uint64_t draws[kChunk];
  size_t i = 0;
  while (i < values.size()) {
    const size_t chunk = std::min(kChunk, values.size() - i);
    rng.FillRaw(seeds, chunk);
    rng.FillRaw(draws, chunk);
    for (size_t k = 0; k < chunk; ++k) {
      assert(values[i + k] < domain_);
      const uint64_t seed = seeds[k];
      const uint32_t h = OlhHash(seed, values[i + k], g);
      const uint64_t m = draws[k] >> 11;  // top 53 bits, like Uniform()
      const uint64_t reject_mask =
          uint64_t{0} - static_cast<uint64_t>(m >= accept_threshold);
      const uint64_t rm = (m - accept_threshold) & reject_mask;
      uint32_t r = static_cast<uint32_t>(static_cast<double>(rm) *
                                         reject_scale);
      r = r > g - 2 ? g - 2 : r;
      r += r >= h ? 1 : 0;  // skip-adjust past the truthful hash
      const uint32_t keep = static_cast<uint32_t>(~reject_mask);
      out[i + k] = FoReport{seed, (h & keep) | (r & ~keep)};
    }
    i += chunk;
  }
}

std::vector<uint64_t> Olh::SupportCounts(
    const std::vector<OlhReport>& reports) const {
  FoSketch sketch = MakeSketch();
  AbsorbBatch(std::span<const OlhReport>(reports), &sketch);
  return std::vector<uint64_t>(sketch.counts.begin(), sketch.counts.end());
}

std::vector<double> Olh::Estimate(const std::vector<OlhReport>& reports) const {
  FoSketch sketch = MakeSketch();
  AbsorbBatch(std::span<const OlhReport>(reports), &sketch);
  return EstimateFromSketch(sketch);
}

void Olh::Absorb(const OlhReport& report, FoSketch* sketch) const {
  AbsorbBatch(std::span<const OlhReport>(&report, 1), sketch);
}

void Olh::AbsorbBatch(std::span<const OlhReport> reports,
                      FoSketch* sketch) const {
  AbsorbBlocked(reports, domain_, g_, sketch);
}

void Olh::AbsorbBatch(std::span<const FoReport> reports,
                      FoSketch* sketch) const {
  AbsorbBlocked(reports, domain_, g_, sketch);
}

std::vector<double> Olh::EstimateFromSketch(const FoSketch& sketch) const {
  assert(sketch.counts.size() == domain_);
  std::vector<double> est(domain_, 0.0);
  if (sketch.n == 0) return est;
  const double one_over_g = 1.0 / static_cast<double>(g_);
  const double denom = p_ - one_over_g;
  for (size_t v = 0; v < domain_; ++v) {
    const double c = static_cast<double>(sketch.counts[v]) /
                     static_cast<double>(sketch.n);
    est[v] = (c - one_over_g) / denom;
  }
  return est;
}

double Olh::Variance(double epsilon, size_t n) {
  const double e = std::exp(epsilon);
  return 4.0 * e / ((e - 1.0) * (e - 1.0) * static_cast<double>(n));
}

}  // namespace numdist
