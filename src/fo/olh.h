// Optimized Local Hashing (OLH), Wang et al. USENIX Security 2017
// (paper §2.1). Each user hashes the value into a small domain of size
// g = round(e^eps) + 1 with a private random hash seed, then applies GRR on
// the hashed value. Variance is ~4 e^eps / ((e^eps - 1)^2 n), independent of
// the original domain size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/sketch.h"

namespace numdist {

/// One OLH report: the (public) hash seed and the perturbed hash value.
struct OlhReport {
  uint64_t seed;
  uint32_t y;
};

/// \brief OLH frequency oracle over the categorical domain {0..d-1}.
class Olh {
 public:
  /// Creates an OLH instance. Requires epsilon > 0 and domain >= 2.
  /// `g` overrides the hashed-domain size; 0 selects the variance-optimal
  /// g = round(e^eps) + 1 (clamped to >= 2).
  static Result<Olh> Make(double epsilon, size_t domain, uint32_t g = 0);

  /// Randomizes one value (client side): fresh seed + GRR on the hash.
  OlhReport Perturb(uint32_t v, Rng& rng) const;

  /// Bulk client encode into the protocol wire format: out[i] carries
  /// report i's seed and perturbed hash. Draws in bulk (a chunk of seeds,
  /// then a chunk of raw accept/reject draws) and spends exactly two raw
  /// draws per report: the second draw's top 53 bits decide acceptance
  /// (the integer threshold test is exactly the event Uniform() < p) and,
  /// on reject, its residual picks the replacement hash bucket — all
  /// selected through masks with no data-dependent branch. The batch draw
  /// order therefore differs from a Perturb() loop, while the reported
  /// channel stays the OLH one (truth hash with probability exactly p,
  /// other buckets uniform up to a ~2^-52 grid; conformance-tested).
  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    FoReport* out) const;

  /// Unbiased frequency estimates (server side). O(n * domain) hashing.
  std::vector<double> Estimate(const std::vector<OlhReport>& reports) const;

  /// Support counts C(v) = |{j : H_j(v) == y_j}| (exposed for tests).
  std::vector<uint64_t> SupportCounts(
      const std::vector<OlhReport>& reports) const;

  /// Empty aggregation state (`domain` support counts).
  FoSketch MakeSketch() const {
    return FoSketch{std::vector<int64_t>(domain_, 0), 0};
  }

  /// Folds one report into the sketch: the O(domain) hashing pass that
  /// dominates server cost, done here so shards parallelize it.
  void Absorb(const OlhReport& report, FoSketch* sketch) const;

  /// Folds a batch of reports into the sketch. Bit-identical to absorbing
  /// each report in turn, but blocked: a fixed-size group of reports is
  /// swept against the contiguous value axis so the support-count array is
  /// touched once per block and the per-value hash mix is hoisted —
  /// several times faster than per-report Absorb at large domains.
  void AbsorbBatch(std::span<const OlhReport> reports, FoSketch* sketch) const;

  /// Wire-format overload for the batched protocol layer (FoReport::value
  /// carries the perturbed hash).
  void AbsorbBatch(std::span<const FoReport> reports, FoSketch* sketch) const;

  /// Unbiased frequency estimates from absorbed support counts; identical
  /// to Estimate() over the same reports in any order.
  std::vector<double> EstimateFromSketch(const FoSketch& sketch) const;

  /// Approximate per-estimate variance 4 e^eps / ((e^eps - 1)^2 n).
  static double Variance(double epsilon, size_t n);

  double epsilon() const { return epsilon_; }
  size_t domain() const { return domain_; }
  uint32_t g() const { return g_; }
  /// GRR retain probability on the hashed domain.
  double p() const { return p_; }

 private:
  Olh(double epsilon, size_t domain, uint32_t g);

  double epsilon_;
  size_t domain_;
  uint32_t g_;
  double p_;
};

}  // namespace numdist
