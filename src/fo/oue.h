// Optimized Unary Encoding (OUE), Wang et al. USENIX Security 2017 — the
// third protocol of the CFO family the paper builds on ([32], §2.1). The
// value is one-hot encoded; the '1' bit is kept with probability 1/2 and
// each '0' bit flips to 1 with probability 1/(e^eps + 1). Matches OLH's
// variance 4 e^eps / ((e^eps - 1)^2 n) with a d-bit report instead of a
// hash seed (bandwidth/CPU trade-off).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/sketch.h"

namespace numdist {

/// \brief OUE frequency oracle over the categorical domain {0..d-1}.
class Oue {
 public:
  /// Creates an OUE instance. Requires epsilon > 0 and domain >= 2.
  static Result<Oue> Make(double epsilon, size_t domain);

  /// Randomizes one value (client side): returns the perturbed bit vector.
  std::vector<uint8_t> Perturb(uint32_t v, Rng& rng) const;

  /// Bulk client encode: appends one `domain`-bit perturbed row per value
  /// to `bits` (flattened, stride = domain). Bit-identical to a loop of
  /// Perturb() calls on the same stream — each row consumes the same
  /// `domain` uniforms in the same order — but the per-bit Bernoulli
  /// compare runs through the dispatched SIMD kernels.
  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    std::vector<uint8_t>* bits) const;

  /// Unbiased frequency estimates from summed bit vectors (server side).
  /// `ones[v]` is the number of reports with bit v set; n is the number of
  /// reports.
  std::vector<double> EstimateFromOnes(const std::vector<uint64_t>& ones,
                                       size_t n) const;

  /// Convenience: perturbs every value and estimates in one pass,
  /// accumulating only the per-bit counts (O(d) server state).
  std::vector<double> Run(const std::vector<uint32_t>& values, Rng& rng) const;

  /// Empty aggregation state (`domain` per-bit ones counts).
  FoSketch MakeSketch() const {
    return FoSketch{std::vector<int64_t>(domain_, 0), 0};
  }

  /// Folds one perturbed bit vector (as returned by Perturb) into the
  /// sketch. `bits` must have `domain` entries.
  void Absorb(const std::vector<uint8_t>& bits, FoSketch* sketch) const;

  /// Unbiased frequency estimates from absorbed ones counts; identical to
  /// EstimateFromOnes over the same reports in any order.
  std::vector<double> EstimateFromSketch(const FoSketch& sketch) const;

  /// Per-estimate variance 4 e^eps / ((e^eps - 1)^2 n) — same as OLH.
  static double Variance(double epsilon, size_t n);

  double epsilon() const { return epsilon_; }
  size_t domain() const { return domain_; }
  /// Probability the true '1' bit stays 1 (= 1/2, the optimized choice).
  double p() const { return 0.5; }
  /// Probability a '0' bit flips to 1 (= 1/(e^eps + 1)).
  double q() const { return q_; }

 private:
  Oue(double epsilon, size_t domain);

  double epsilon_;
  size_t domain_;
  double q_;
};

}  // namespace numdist
