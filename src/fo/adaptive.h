// Adaptive categorical frequency oracle: picks GRR or OLH per (epsilon, d)
// by comparing their analytical variances (paper §2.1: GRR wins iff
// d - 2 < 3 e^eps). This is the FO used by CFO-with-binning and by each
// layer of the hierarchical histogram.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/grr.h"
#include "fo/olh.h"
#include "fo/sketch.h"

namespace numdist {

/// \brief Variance-adaptive frequency oracle (GRR for small domains, OLH for
/// large ones), with a one-shot perturb-and-estimate pipeline.
class AdaptiveFo {
 public:
  /// Creates the adaptive oracle. Requires epsilon > 0 and domain >= 2.
  static Result<AdaptiveFo> Make(double epsilon, size_t domain);

  /// True iff GRR was selected (d - 2 < 3 e^eps).
  bool uses_grr() const { return use_grr_; }

  /// Perturbs every value and returns unbiased frequency estimates.
  /// `values` are in {0..domain-1}. Estimates may be negative.
  std::vector<double> Run(const std::vector<uint32_t>& values, Rng& rng) const;

  /// Randomizes one value (client side) into the uniform wire format:
  /// a GRR category or an OLH (seed, hash) pair, depending on the selected
  /// protocol.
  FoReport Perturb(uint32_t v, Rng& rng) const;

  /// Bulk client encode: randomizes values[i] into out[i] through the
  /// selected oracle's batch path (see Grr::PerturbBatch /
  /// Olh::PerturbBatch for the bulk draw-order contract).
  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    FoReport* out) const;

  /// Empty aggregation state for the selected protocol.
  FoSketch MakeSketch() const;

  /// Folds one report into the sketch (O(1) for GRR, O(domain) for OLH).
  void Absorb(const FoReport& report, FoSketch* sketch) const;

  /// Unbiased frequency estimates from an absorbed sketch; identical to
  /// Run() over the same values with the same RNG stream.
  std::vector<double> EstimateFromSketch(const FoSketch& sketch) const;

  const Grr& grr() const { return grr_; }
  const Olh& olh() const { return olh_; }

  /// Analytical per-estimate variance of the selected protocol for n users.
  double VariancePerEstimate(size_t n) const;

  double epsilon() const { return epsilon_; }
  size_t domain() const { return domain_; }

 private:
  AdaptiveFo(double epsilon, size_t domain, bool use_grr, Grr grr, Olh olh);

  double epsilon_;
  size_t domain_;
  bool use_grr_;
  Grr grr_;
  Olh olh_;
};

}  // namespace numdist
