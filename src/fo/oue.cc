#include "fo/oue.h"

#include <cassert>
#include <cmath>

#include "kernels/kernels.h"

namespace numdist {

Result<Oue> Oue::Make(double epsilon, size_t domain) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("OUE: epsilon must be positive and finite");
  }
  if (domain < 2) {
    return Status::InvalidArgument("OUE: domain size must be >= 2");
  }
  return Oue(epsilon, domain);
}

Oue::Oue(double epsilon, size_t domain)
    : epsilon_(epsilon), domain_(domain) {
  q_ = 1.0 / (std::exp(epsilon) + 1.0);
}

std::vector<uint8_t> Oue::Perturb(uint32_t v, Rng& rng) const {
  assert(v < domain_);
  std::vector<uint8_t> bits(domain_, 0);
  for (size_t j = 0; j < domain_; ++j) {
    const double keep = (j == v) ? 0.5 : q_;
    bits[j] = rng.Bernoulli(keep) ? 1 : 0;
  }
  return bits;
}

void Oue::PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                       std::vector<uint8_t>* bits) const {
  const size_t old_size = bits->size();
  bits->resize(old_size + values.size() * domain_);
  uint8_t* row = bits->data() + old_size;
  std::vector<double> u(domain_);
  for (uint32_t v : values) {
    assert(v < domain_);
    // Same draws as Perturb: one uniform per bit, row-major. The whole row
    // is compared against the flip probability q in one kernel pass, then
    // the true bit's compare is redone against its 1/2 keep probability
    // using the same uniform.
    rng.FillUniform(u.data(), domain_);
    kernels::LessThan(u.data(), q_, row, domain_);
    row[v] = u[v] < 0.5 ? 1 : 0;
    row += domain_;
  }
}

std::vector<double> Oue::EstimateFromOnes(const std::vector<uint64_t>& ones,
                                          size_t n) const {
  assert(ones.size() == domain_);
  return EstimateFromSketch(
      FoSketch{std::vector<int64_t>(ones.begin(), ones.end()), n});
}

std::vector<double> Oue::Run(const std::vector<uint32_t>& values,
                             Rng& rng) const {
  std::vector<uint64_t> ones(domain_, 0);
  for (uint32_t v : values) {
    // Accumulate the perturbed bits directly; no per-user vector retained.
    assert(v < domain_);
    for (size_t j = 0; j < domain_; ++j) {
      const double keep = (j == v) ? 0.5 : q_;
      if (rng.Bernoulli(keep)) ++ones[j];
    }
  }
  return EstimateFromOnes(ones, values.size());
}

void Oue::Absorb(const std::vector<uint8_t>& bits, FoSketch* sketch) const {
  assert(bits.size() == domain_ && sketch->counts.size() == domain_);
  for (size_t j = 0; j < domain_; ++j) sketch->counts[j] += bits[j];
  ++sketch->n;
}

std::vector<double> Oue::EstimateFromSketch(const FoSketch& sketch) const {
  assert(sketch.counts.size() == domain_);
  std::vector<double> est(domain_, 0.0);
  if (sketch.n == 0) return est;
  // E[ones_v / n] = 0.5 f_v + q (1 - f_v); invert the affine map.
  const double denom = 0.5 - q_;
  for (size_t v = 0; v < domain_; ++v) {
    const double c = static_cast<double>(sketch.counts[v]) /
                     static_cast<double>(sketch.n);
    est[v] = (c - q_) / denom;
  }
  return est;
}

double Oue::Variance(double epsilon, size_t n) {
  const double e = std::exp(epsilon);
  return 4.0 * e / ((e - 1.0) * (e - 1.0) * static_cast<double>(n));
}

}  // namespace numdist
