// Intentionally empty: hash.h is header-only; this TU anchors it in the
// library so missing-include breakage is caught at library build time.
#include "fo/hash.h"
