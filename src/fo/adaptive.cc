#include "fo/adaptive.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace numdist {

Result<AdaptiveFo> AdaptiveFo::Make(double epsilon, size_t domain) {
  Result<Grr> grr = Grr::Make(epsilon, domain);
  if (!grr.ok()) return grr.status();
  Result<Olh> olh = Olh::Make(epsilon, domain);
  if (!olh.ok()) return olh.status();
  const bool use_grr =
      static_cast<double>(domain) - 2.0 < 3.0 * std::exp(epsilon);
  return AdaptiveFo(epsilon, domain, use_grr, std::move(grr).value(),
                    std::move(olh).value());
}

AdaptiveFo::AdaptiveFo(double epsilon, size_t domain, bool use_grr, Grr grr,
                       Olh olh)
    : epsilon_(epsilon),
      domain_(domain),
      use_grr_(use_grr),
      grr_(std::move(grr)),
      olh_(std::move(olh)) {}

std::vector<double> AdaptiveFo::Run(const std::vector<uint32_t>& values,
                                    Rng& rng) const {
  FoSketch sketch = MakeSketch();
  for (uint32_t v : values) Absorb(Perturb(v, rng), &sketch);
  return EstimateFromSketch(sketch);
}

FoReport AdaptiveFo::Perturb(uint32_t v, Rng& rng) const {
  if (use_grr_) return FoReport{0, grr_.Perturb(v, rng)};
  const OlhReport rep = olh_.Perturb(v, rng);
  return FoReport{rep.seed, rep.y};
}

void AdaptiveFo::PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                              FoReport* out) const {
  if (!use_grr_) {
    olh_.PerturbBatch(values, rng, out);
    return;
  }
  constexpr size_t kChunk = 512;
  uint32_t reports[kChunk];
  size_t i = 0;
  while (i < values.size()) {
    const size_t m = std::min(kChunk, values.size() - i);
    grr_.PerturbBatch(values.subspan(i, m), rng, reports);
    for (size_t k = 0; k < m; ++k) out[i + k] = FoReport{0, reports[k]};
    i += m;
  }
}

FoSketch AdaptiveFo::MakeSketch() const {
  return use_grr_ ? grr_.MakeSketch() : olh_.MakeSketch();
}

void AdaptiveFo::Absorb(const FoReport& report, FoSketch* sketch) const {
  if (use_grr_) {
    grr_.Absorb(report.value, sketch);
  } else {
    olh_.Absorb(OlhReport{report.seed, report.value}, sketch);
  }
}

std::vector<double> AdaptiveFo::EstimateFromSketch(
    const FoSketch& sketch) const {
  return use_grr_ ? grr_.EstimateFromSketch(sketch)
                  : olh_.EstimateFromSketch(sketch);
}

double AdaptiveFo::VariancePerEstimate(size_t n) const {
  if (n == 0) return 0.0;
  return use_grr_ ? Grr::Variance(epsilon_, domain_, n)
                  : Olh::Variance(epsilon_, n);
}

}  // namespace numdist
