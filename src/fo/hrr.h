// Hadamard Randomized Response (HRR), the frequency oracle Kulkarni et al.
// (PVLDB 2019) use inside HaarHRR (paper §4.2). The user's value indexes a
// row of the {-1,+1} Hadamard matrix; the user samples a uniform column,
// reads the +-1 entry, flips it with probability 1/(e^eps + 1), and reports
// (column, bit). Row orthogonality makes the de-biased correlation an
// unbiased frequency estimate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/sketch.h"

namespace numdist {

/// One HRR report: the sampled Hadamard column and the (possibly flipped)
/// matrix entry.
struct HrrReport {
  uint32_t col;
  int8_t bit;  // -1 or +1
};

/// \brief Hadamard Randomized Response frequency oracle over {0..d-1}.
class Hrr {
 public:
  /// Creates an HRR instance. Requires epsilon > 0 and 2 <= domain.
  /// The Hadamard order is the smallest power of two >= domain.
  static Result<Hrr> Make(double epsilon, size_t domain);

  /// Randomizes one value (client side).
  HrrReport Perturb(uint32_t v, Rng& rng) const;

  /// Bulk client encode: randomizes values[i] into out[i]. Draws in bulk
  /// (a chunk of raw column draws, then a chunk of flip uniforms), so the
  /// batch draw order differs from a Perturb() loop while each report's
  /// channel is unchanged: the column comes from the identical
  /// power-of-two Lemire reduction (exactly one draw, no rejection), the
  /// flip from one uniform-vs-p compare.
  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    HrrReport* out) const;

  /// Unbiased frequency estimates (server side). O(n * domain) popcounts.
  std::vector<double> Estimate(const std::vector<HrrReport>& reports) const;

  /// Empty aggregation state (`domain` signed correlation sums).
  FoSketch MakeSketch() const {
    return FoSketch{std::vector<int64_t>(domain_, 0), 0};
  }

  /// Folds one report into the sketch: the O(domain) Hadamard correlation
  /// pass, done here so shards parallelize it.
  void Absorb(const HrrReport& report, FoSketch* sketch) const;

  /// Unbiased frequency estimates from absorbed correlations; identical to
  /// Estimate() over the same reports in any order.
  std::vector<double> EstimateFromSketch(const FoSketch& sketch) const;

  /// Approximate per-estimate variance ((e^eps+1)/(e^eps-1))^2 / n.
  static double Variance(double epsilon, size_t n);

  double epsilon() const { return epsilon_; }
  size_t domain() const { return domain_; }
  /// Hadamard matrix order (power of two >= domain).
  uint32_t order() const { return order_; }
  /// Probability of reporting the entry un-flipped.
  double p() const { return p_; }

 private:
  Hrr(double epsilon, size_t domain);

  double epsilon_;
  size_t domain_;
  uint32_t order_;
  double p_;
};

}  // namespace numdist
