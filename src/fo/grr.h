// Generalized Randomized Response (GRR), the basic categorical frequency
// oracle (paper §2.1). Reports the true value with probability
// p = e^eps / (e^eps + d - 1) and any other value with probability
// q = 1 / (e^eps + d - 1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "fo/sketch.h"

namespace numdist {

/// \brief GRR frequency oracle over the categorical domain {0..d-1}.
class Grr {
 public:
  /// Creates a GRR instance. Requires epsilon > 0 and domain >= 2.
  static Result<Grr> Make(double epsilon, size_t domain);

  /// Randomizes one value (client side).
  uint32_t Perturb(uint32_t v, Rng& rng) const;

  /// Bulk client encode: randomizes values[i] into out[i] (out holds
  /// values.size() slots). One uniform draw per report — the accept
  /// decision and, on reject, the replacement category both derive from
  /// the same draw — with the category map running through the dispatched
  /// SIMD kernels. The batch draw order therefore differs from a loop of
  /// Perturb() calls, but the report distribution is the same GRR channel
  /// (truth with probability exactly p; each other category uniform up to
  /// the 2^-53 grid of one double draw — far below the conformance tier's
  /// detection radius, which covers this path).
  void PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                    uint32_t* out) const;

  /// Unbiased frequency estimates from raw reports (server side).
  /// Output has `domain` entries; entries may be negative.
  std::vector<double> Estimate(const std::vector<uint32_t>& reports) const;

  /// Unbiased frequency estimates from a pre-aggregated report histogram.
  std::vector<double> EstimateFromCounts(const std::vector<uint64_t>& counts,
                                         size_t n) const;

  /// Empty aggregation state (`domain` report counts).
  FoSketch MakeSketch() const {
    return FoSketch{std::vector<int64_t>(domain_, 0), 0};
  }

  /// Folds one report into the sketch: counts[report]++. O(1).
  void Absorb(uint32_t report, FoSketch* sketch) const;

  /// Unbiased frequency estimates from an absorbed sketch; identical to
  /// Estimate() over the same reports in any order.
  std::vector<double> EstimateFromSketch(const FoSketch& sketch) const;

  /// Per-estimate variance for a frequency near 0: (d-2+e^eps)/((e^eps-1)^2 n)
  /// (paper Eq. 1).
  static double Variance(double epsilon, size_t domain, size_t n);

  double epsilon() const { return epsilon_; }
  size_t domain() const { return domain_; }
  /// Probability of reporting the true value.
  double p() const { return p_; }
  /// Probability of reporting any specific other value.
  double q() const { return q_; }

 private:
  Grr(double epsilon, size_t domain);

  double epsilon_;
  size_t domain_;
  double p_;
  double q_;
};

}  // namespace numdist
