// Seeded hash family used by Optimized Local Hashing (OLH).
//
// OLH needs a family {H_seed} of hash functions D -> {0..g-1} such that a
// fresh random seed gives an (approximately) pairwise-independent function.
// We use splitmix64 over (seed, value), which is the standard choice in
// LDP reference implementations and passes avalanche tests.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace numdist {

/// Multiplier decorrelating consecutive values before the seed mix
/// (splitmix64's golden-ratio gamma).
inline constexpr uint64_t kOlhValueMix = 0x9e3779b97f4a7c15ULL;

/// OlhHash with the value already multiplied by kOlhValueMix. Lets batched
/// server loops hoist the per-value multiply out of their report-inner loop;
/// bit-identical to OlhHash(seed, value, g).
inline uint32_t OlhHashPremixed(uint64_t seed, uint64_t mixed_value,
                                uint32_t g) {
  const uint64_t h = SplitMix64(seed ^ mixed_value);
  // Multiply-shift range reduction: maps uniform 64-bit h to [0, g).
  return static_cast<uint32_t>(
      (static_cast<__uint128_t>(h) * g) >> 64);
}

/// Hash of `value` under the family member identified by `seed`, reduced to
/// {0..g-1} via the fixed-point multiply (unbiased enough for g << 2^32).
inline uint32_t OlhHash(uint64_t seed, uint64_t value, uint32_t g) {
  return OlhHashPremixed(seed, value * kOlhValueMix, g);
}

/// Entry (row, col) of the {-1,+1} Hadamard matrix of any power-of-two order:
/// phi[r][c] = (-1)^{popcount(r & c)}.
inline int HadamardEntry(uint32_t row, uint32_t col) {
  return (__builtin_popcount(row & col) & 1) ? -1 : 1;
}

/// Smallest power of two >= x (x >= 1).
inline uint32_t NextPow2(uint32_t x) {
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace numdist
