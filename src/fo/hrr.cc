#include "fo/hrr.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fo/hash.h"

namespace numdist {

Result<Hrr> Hrr::Make(double epsilon, size_t domain) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("HRR: epsilon must be positive and finite");
  }
  if (domain < 2) {
    return Status::InvalidArgument("HRR: domain size must be >= 2");
  }
  if (domain > (1ULL << 30)) {
    return Status::InvalidArgument("HRR: domain too large");
  }
  return Hrr(epsilon, domain);
}

Hrr::Hrr(double epsilon, size_t domain)
    : epsilon_(epsilon),
      domain_(domain),
      order_(NextPow2(static_cast<uint32_t>(domain))) {
  const double e = std::exp(epsilon);
  p_ = e / (e + 1.0);
}

HrrReport Hrr::Perturb(uint32_t v, Rng& rng) const {
  assert(v < domain_);
  HrrReport report;
  report.col = static_cast<uint32_t>(rng.UniformInt(order_));
  const int entry = HadamardEntry(v, report.col);
  report.bit = static_cast<int8_t>(rng.Bernoulli(p_) ? entry : -entry);
  return report;
}

void Hrr::PerturbBatch(std::span<const uint32_t> values, Rng& rng,
                       HrrReport* out) const {
  constexpr size_t kChunk = 256;
  uint64_t raw[kChunk];
  double u[kChunk];
  size_t i = 0;
  while (i < values.size()) {
    const size_t m = std::min(kChunk, values.size() - i);
    rng.FillRaw(raw, m);
    rng.FillUniform(u, m);
    for (size_t k = 0; k < m; ++k) {
      assert(values[i + k] < domain_);
      // UniformInt(order) for a power-of-two order is exactly one
      // fixed-point multiply of one raw draw (the Lemire rejection
      // threshold is 2^64 mod order == 0).
      const uint32_t col = static_cast<uint32_t>(
          (static_cast<__uint128_t>(raw[k]) * order_) >> 64);
      const int entry = HadamardEntry(values[i + k], col);
      out[i + k] =
          HrrReport{col, static_cast<int8_t>(u[k] < p_ ? entry : -entry)};
    }
    i += m;
  }
}

std::vector<double> Hrr::Estimate(const std::vector<HrrReport>& reports) const {
  FoSketch sketch = MakeSketch();
  for (const HrrReport& rep : reports) Absorb(rep, &sketch);
  return EstimateFromSketch(sketch);
}

void Hrr::Absorb(const HrrReport& report, FoSketch* sketch) const {
  assert(sketch->counts.size() == domain_);
  for (size_t t = 0; t < domain_; ++t) {
    sketch->counts[t] +=
        HadamardEntry(static_cast<uint32_t>(t), report.col) * report.bit;
  }
  ++sketch->n;
}

std::vector<double> Hrr::EstimateFromSketch(const FoSketch& sketch) const {
  assert(sketch.counts.size() == domain_);
  std::vector<double> est(domain_, 0.0);
  if (sketch.n == 0) return est;
  // E[phi[t][col] * bit] = (2p - 1) * 1[t == value], by row orthogonality.
  const double scale =
      1.0 / ((2.0 * p_ - 1.0) * static_cast<double>(sketch.n));
  for (size_t t = 0; t < domain_; ++t) {
    est[t] = static_cast<double>(sketch.counts[t]) * scale;
  }
  return est;
}

double Hrr::Variance(double epsilon, size_t n) {
  const double e = std::exp(epsilon);
  const double r = (e + 1.0) / (e - 1.0);
  return r * r / static_cast<double>(n);
}

}  // namespace numdist
