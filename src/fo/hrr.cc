#include "fo/hrr.h"

#include <cassert>
#include <cmath>

#include "fo/hash.h"

namespace numdist {

Result<Hrr> Hrr::Make(double epsilon, size_t domain) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("HRR: epsilon must be positive and finite");
  }
  if (domain < 2) {
    return Status::InvalidArgument("HRR: domain size must be >= 2");
  }
  if (domain > (1ULL << 30)) {
    return Status::InvalidArgument("HRR: domain too large");
  }
  return Hrr(epsilon, domain);
}

Hrr::Hrr(double epsilon, size_t domain)
    : epsilon_(epsilon),
      domain_(domain),
      order_(NextPow2(static_cast<uint32_t>(domain))) {
  const double e = std::exp(epsilon);
  p_ = e / (e + 1.0);
}

HrrReport Hrr::Perturb(uint32_t v, Rng& rng) const {
  assert(v < domain_);
  HrrReport report;
  report.col = static_cast<uint32_t>(rng.UniformInt(order_));
  const int entry = HadamardEntry(v, report.col);
  report.bit = static_cast<int8_t>(rng.Bernoulli(p_) ? entry : -entry);
  return report;
}

std::vector<double> Hrr::Estimate(const std::vector<HrrReport>& reports) const {
  FoSketch sketch = MakeSketch();
  for (const HrrReport& rep : reports) Absorb(rep, &sketch);
  return EstimateFromSketch(sketch);
}

void Hrr::Absorb(const HrrReport& report, FoSketch* sketch) const {
  assert(sketch->counts.size() == domain_);
  for (size_t t = 0; t < domain_; ++t) {
    sketch->counts[t] +=
        HadamardEntry(static_cast<uint32_t>(t), report.col) * report.bit;
  }
  ++sketch->n;
}

std::vector<double> Hrr::EstimateFromSketch(const FoSketch& sketch) const {
  assert(sketch.counts.size() == domain_);
  std::vector<double> est(domain_, 0.0);
  if (sketch.n == 0) return est;
  // E[phi[t][col] * bit] = (2p - 1) * 1[t == value], by row orthogonality.
  const double scale =
      1.0 / ((2.0 * p_ - 1.0) * static_cast<double>(sketch.n));
  for (size_t t = 0; t < domain_; ++t) {
    est[t] = static_cast<double>(sketch.counts[t]) * scale;
  }
  return est;
}

double Hrr::Variance(double epsilon, size_t n) {
  const double e = std::exp(epsilon);
  const double r = (e + 1.0) / (e - 1.0);
  return r * r / static_cast<double>(n);
}

}  // namespace numdist
