// Flag-parsing scaffold shared by the numdist command-line tools: the
// `--key=value` prefix matcher and the uniform Status error exit. Tools
// keep their own flag lists; only the mechanics live here.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/status.h"

namespace numdist::tools {

/// Returns the value part of `arg` when it starts with `prefix`
/// (e.g. FlagValue("--seed=7", "--seed=") -> "7"), nullptr otherwise.
inline const char* FlagValue(const std::string& arg, const char* prefix) {
  const size_t len = strlen(prefix);
  return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
}

/// Prints a Status to stderr and returns the conventional error exit code.
inline int Fail(const Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace numdist::tools
