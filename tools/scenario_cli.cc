// scenario_cli — run a declarative LDP collection scenario end-to-end.
//
// Executes a built-in or file-based scenario (dataset mixtures, temporal
// drift, population ramps, epsilon schedules, shard/merge topologies over
// StreamingAggregator) and prints the checkpoint trajectory: reconstruction
// quality against the scenario's exact running ground truth at every
// merge-and-snapshot point.
//
//   scenario_cli --scenario=drift [--seed=S] [--threads=W] [--csv] [--dump]
//   scenario_cli --scenario=path/to/file.scenario
//   scenario_cli --list
//
// Results are bit-identical for a fixed seed at any --threads (scenario
// shard streams are fixed per (seed, phase, shard); see scenario/scenario.h).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_common.h"
#include "scenario/scenario.h"

using namespace numdist;
using numdist::tools::FlagValue;

namespace {

struct CliFlags {
  std::string scenario;
  bool list = false;
  bool csv = false;
  bool dump = false;
  bool wire = false;
  bool validate = false;
  bool has_seed = false;
  uint64_t seed = 0;
  size_t threads = 0;
  std::string incremental;  // "" = keep the scenario's own setting
  double half_life = 0.0;
};

void Usage() {
  fprintf(stderr,
          "usage: scenario_cli --scenario=NAME|FILE [--seed=S] [--threads=W]\n"
          "                    [--csv] [--dump] [--wire] [--validate]\n"
          "                    [--incremental=off|warm|minibatch]\n"
          "                    [--half-life=R]\n"
          "       scenario_cli --list\n"
          "built-in scenarios: drift, ramp, eps-schedule\n"
          "--wire routes checkpoint merges through the wire codec\n"
          "  (bit-identical results; exercises the distributed path)\n"
          "--incremental runs a warm-started / mini-batch reconstruction\n"
          "  next to every checkpoint (extra inc_* output columns);\n"
          "  minibatch forgets old reports with --half-life=R reports\n"
          "--validate parses and validates the scenario, then exits\n");
}

bool ParseCli(int argc, char** argv, CliFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = FlagValue(arg, "--scenario=")) {
      flags->scenario = v;
    } else if (arg == "--list") {
      flags->list = true;
    } else if (arg == "--csv") {
      flags->csv = true;
    } else if (arg == "--dump") {
      flags->dump = true;
    } else if (arg == "--wire") {
      flags->wire = true;
    } else if (arg == "--validate") {
      flags->validate = true;
    } else if (const char* v = FlagValue(arg, "--seed=")) {
      flags->has_seed = true;
      flags->seed = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--threads=")) {
      flags->threads = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--incremental=")) {
      flags->incremental = v;
    } else if (const char* v = FlagValue(arg, "--half-life=")) {
      flags->half_life = atof(v);
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return flags->list || !flags->scenario.empty();
}

bool IsBuiltin(const std::string& name) {
  for (const std::string& builtin : BuiltinScenarioNames()) {
    if (name == builtin) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  if (!ParseCli(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  if (flags.list) {
    for (const std::string& name : BuiltinScenarioNames()) {
      printf("%s\n", name.c_str());
    }
    return 0;
  }

  Result<ScenarioConfig> config = IsBuiltin(flags.scenario)
                                      ? BuiltinScenario(flags.scenario)
                                      : LoadScenarioFile(flags.scenario);
  if (!config.ok()) {
    fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 1;
  }
  if (flags.has_seed) config->seed = flags.seed;
  config->threads = flags.threads;
  if (flags.wire) config->wire_checkpoints = true;
  if (!flags.incremental.empty()) {
    if (flags.incremental == "off") {
      config->incremental = IncrementalMode::kOff;
      config->half_life = 0.0;
    } else if (flags.incremental == "warm") {
      config->incremental = IncrementalMode::kWarm;
    } else if (flags.incremental == "minibatch") {
      config->incremental = IncrementalMode::kMiniBatch;
    } else {
      fprintf(stderr, "--incremental must be off, warm, or minibatch\n");
      return 2;
    }
  }
  if (flags.half_life > 0.0) config->half_life = flags.half_life;
  const Status valid = ValidateScenario(config.value());
  if (!valid.ok()) {
    fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 1;
  }

  if (flags.validate) {
    // LoadScenarioFile/BuiltinScenario already ran ValidateScenario; report
    // the parsed shape and exit without collecting anything (used by
    // tools/check_docs.py to keep documented examples loadable).
    printf("valid: scenario=%s d=%zu shards=%zu phases=%zu\n",
           config->name.c_str(), config->d, config->shards,
           config->phases.size());
    return 0;
  }

  Result<ScenarioResult> result = RunScenario(config.value());
  if (!result.ok()) {
    fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // The inc_* columns appear only when incremental mode is on, so default
  // outputs stay byte-identical to previous releases (CI diffs them).
  const bool inc = config->incremental != IncrementalMode::kOff;
  if (flags.csv) {
    printf(
        "phase,checkpoint,epsilon,group_reports,total_reports,"
        "wasserstein,ks,em_iterations,em_converged%s\n",
        inc ? ",inc_wasserstein,inc_ks,inc_iterations,inc_total_iterations"
            : "");
  } else {
    printf("scenario=%s seed=%llu d=%zu shards=%zu phases=%zu\n",
           config->name.c_str(),
           static_cast<unsigned long long>(config->seed), config->d,
           config->shards, config->phases.size());
    printf("%-12s %4s %7s %10s %10s %12s %12s %6s %s", "phase", "ckpt",
           "eps", "group_n", "total_n", "wasserstein", "ks", "iters", "conv");
    if (inc) {
      printf(" %12s %12s %9s %9s", "inc_wass", "inc_ks", "inc_iters",
             "inc_total");
    }
    printf("\n");
  }
  for (const ScenarioCheckpoint& c : result->checkpoints) {
    if (flags.csv) {
      printf("%s,%zu,%.17g,%llu,%llu,%.17g,%.17g,%zu,%d", c.phase.c_str(),
             c.checkpoint_index, c.epsilon,
             static_cast<unsigned long long>(c.group_reports),
             static_cast<unsigned long long>(c.total_reports), c.wasserstein,
             c.ks, c.em_iterations, c.em_converged ? 1 : 0);
      if (inc) {
        printf(",%.17g,%.17g,%zu,%zu", c.inc_wasserstein, c.inc_ks,
               c.inc_em_iterations, c.inc_total_iterations);
      }
      printf("\n");
    } else {
      printf("%-12s %4zu %7.3f %10llu %10llu %12.6f %12.6f %6zu %s",
             c.phase.c_str(), c.checkpoint_index, c.epsilon,
             static_cast<unsigned long long>(c.group_reports),
             static_cast<unsigned long long>(c.total_reports), c.wasserstein,
             c.ks, c.em_iterations, c.em_converged ? "yes" : "no");
      if (inc) {
        printf(" %12.6f %12.6f %9zu %9zu", c.inc_wasserstein, c.inc_ks,
               c.inc_em_iterations, c.inc_total_iterations);
      }
      printf("\n");
    }
  }
  if (flags.dump && !result->checkpoints.empty()) {
    const ScenarioCheckpoint& last = result->checkpoints.back();
    printf("\nfinal estimate (phase=%s checkpoint=%zu):\n", last.phase.c_str(),
           last.checkpoint_index);
    printf("bucket,estimate,truth\n");
    for (size_t i = 0; i < last.estimate.size(); ++i) {
      printf("%zu,%.8e,%.8e\n", i, last.estimate[i], last.truth[i]);
    }
  }
  return 0;
}
