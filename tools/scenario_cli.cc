// scenario_cli — run a declarative LDP collection scenario end-to-end.
//
// Executes a built-in or file-based scenario (dataset mixtures, temporal
// drift, population ramps, epsilon schedules, shard/merge topologies over
// StreamingAggregator) and prints the checkpoint trajectory: reconstruction
// quality against the scenario's exact running ground truth at every
// merge-and-snapshot point.
//
//   scenario_cli --scenario=drift [--seed=S] [--threads=W] [--csv] [--dump]
//   scenario_cli --scenario=path/to/file.scenario
//   scenario_cli --list
//
// The adversarial mode runs a poisoned categorical frequency-oracle
// collection (scenario/attack.h) instead of a scenario file: a malicious
// cohort crafts maximal-gain reports against one target bucket, the raw
// estimate is scored against the honest cohort's exact histogram, and the
// postprocess/defense.h consistency detectors report what they saw:
//
//   scenario_cli --attack=grr:output:0.05@32 [--n=N] [--domain=D]
//                [--eps=E] [--shards=S] [--seed=S] [--threads=W] [--csv]
//
// Results are bit-identical for a fixed seed at any --threads (scenario
// shard streams are fixed per (seed, phase, shard); see scenario/scenario.h).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli_common.h"
#include "scenario/attack.h"
#include "scenario/scenario.h"

using namespace numdist;
using numdist::tools::FlagValue;

namespace {

struct CliFlags {
  std::string scenario;
  bool list = false;
  bool csv = false;
  bool dump = false;
  bool wire = false;
  bool validate = false;
  bool has_seed = false;
  uint64_t seed = 0;
  size_t threads = 0;
  std::string incremental;  // "" = keep the scenario's own setting
  double half_life = 0.0;
  std::string attack;       // FO attack mode: CHANNEL:KIND:FRACTION@TARGET
  std::string defense;      // "" = keep the scenario's own setting
  double defense_threshold = 0.0;
  size_t n = 200000;        // FO attack mode volume
  size_t domain = 64;       // FO attack mode domain
  double eps = 1.0;         // FO attack mode budget
  size_t shards = 4;        // FO attack mode shards
};

void Usage() {
  fprintf(stderr,
          "usage: scenario_cli --scenario=NAME|FILE [--seed=S] [--threads=W]\n"
          "                    [--csv] [--dump] [--wire] [--validate]\n"
          "                    [--incremental=off|warm|minibatch]\n"
          "                    [--half-life=R]\n"
          "       scenario_cli --list\n"
          "built-in scenarios: drift, ramp, eps-schedule\n"
          "--wire routes checkpoint merges through the wire codec\n"
          "  (bit-identical results; exercises the distributed path)\n"
          "          scenario_cli --attack=CHANNEL:KIND:FRACTION@TARGET\n"
          "                    [--n=N] [--domain=D] [--eps=E] [--shards=S]\n"
          "                    [--seed=S] [--threads=W] [--csv]\n"
          "--incremental runs a warm-started / mini-batch reconstruction\n"
          "  next to every checkpoint (extra inc_* output columns);\n"
          "  minibatch forgets old reports with --half-life=R reports\n"
          "--validate parses and validates the scenario, then exits\n"
          "--attack runs a poisoned frequency-oracle collection instead of\n"
          "  a scenario: CHANNEL is grr|olh|oue, KIND is input|output|skew,\n"
          "  FRACTION in [0,1] is the malicious cohort, TARGET the bucket\n"
          "  whose mass the attacker inflates (scenario/attack.h)\n"
          "--defense=off|consistency overrides a scenario's defense setting\n"
          "  (per-checkpoint def_* columns); --defense-threshold=Z sets the\n"
          "  spike detector's z threshold in both modes\n");
}

bool ParseCli(int argc, char** argv, CliFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = FlagValue(arg, "--scenario=")) {
      flags->scenario = v;
    } else if (arg == "--list") {
      flags->list = true;
    } else if (arg == "--csv") {
      flags->csv = true;
    } else if (arg == "--dump") {
      flags->dump = true;
    } else if (arg == "--wire") {
      flags->wire = true;
    } else if (arg == "--validate") {
      flags->validate = true;
    } else if (const char* v = FlagValue(arg, "--seed=")) {
      flags->has_seed = true;
      flags->seed = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--threads=")) {
      flags->threads = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--incremental=")) {
      flags->incremental = v;
    } else if (const char* v = FlagValue(arg, "--half-life=")) {
      flags->half_life = atof(v);
    } else if (const char* v = FlagValue(arg, "--attack=")) {
      flags->attack = v;
    } else if (const char* v = FlagValue(arg, "--defense=")) {
      flags->defense = v;
    } else if (const char* v = FlagValue(arg, "--defense-threshold=")) {
      flags->defense_threshold = atof(v);
    } else if (const char* v = FlagValue(arg, "--n=")) {
      flags->n = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--domain=")) {
      flags->domain = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--eps=")) {
      flags->eps = atof(v);
    } else if (const char* v = FlagValue(arg, "--shards=")) {
      flags->shards = static_cast<size_t>(atoll(v));
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return flags->list || !flags->scenario.empty() || !flags->attack.empty();
}

// Parses CHANNEL:KIND:FRACTION@TARGET (e.g. "grr:output:0.05@32") into an
// FO attack config; the run parameters come from the other flags.
Result<FoAttackConfig> ParseAttackFlag(const CliFlags& flags) {
  FoAttackConfig config;
  config.domain = flags.domain;
  config.epsilon = flags.eps;
  config.n = flags.n;
  config.shards = flags.shards;
  config.seed = flags.has_seed ? flags.seed : 42;
  config.threads = flags.threads;
  if (flags.defense_threshold > 0.0) {
    config.defense.spike_z_threshold = flags.defense_threshold;
  }
  const std::string& spec = flags.attack;
  const size_t c1 = spec.find(':');
  const size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
  const size_t at = c2 == std::string::npos ? c2 : spec.find('@', c2 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos ||
      at == std::string::npos) {
    return Status::InvalidArgument(
        "--attack must be CHANNEL:KIND:FRACTION@TARGET, got '" + spec + "'");
  }
  NUMDIST_ASSIGN_OR_RETURN(config.channel,
                           ParseFoChannel(spec.substr(0, c1)));
  NUMDIST_ASSIGN_OR_RETURN(config.attack.kind,
                           ParseAttackKind(spec.substr(c1 + 1, c2 - c1 - 1)));
  char* parse_end = nullptr;
  const std::string frac = spec.substr(c2 + 1, at - c2 - 1);
  config.attack.fraction = std::strtod(frac.c_str(), &parse_end);
  if (frac.empty() || parse_end != frac.c_str() + frac.size()) {
    return Status::InvalidArgument("--attack: bad fraction '" + frac + "'");
  }
  const std::string target = spec.substr(at + 1);
  const long long parsed_target = std::strtoll(target.c_str(), &parse_end, 10);
  if (target.empty() || parse_end != target.c_str() + target.size() ||
      parsed_target < 0) {
    return Status::InvalidArgument("--attack: bad target '" + target + "'");
  }
  config.attack.target = static_cast<size_t>(parsed_target);
  return config;
}

// The FO attack mode: run, score against the honest cohort, print what the
// consistency detectors saw.
int RunAttackMode(const CliFlags& flags) {
  Result<FoAttackConfig> config = ParseAttackFlag(flags);
  if (!config.ok()) {
    fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 2;
  }
  Result<FoAttackResult> result = RunFoAttack(config.value());
  if (!result.ok()) {
    fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const FoAttackResult& r = result.value();
  const size_t t = config->attack.target;
  if (flags.csv) {
    printf(
        "channel,kind,fraction,target,n,honest,attacked,est_target,"
        "clean_target,atk_gain,mitigated_gain,def_sum_dev,def_neg_mass,"
        "def_spike_z,def_spike_bucket,def_flagged\n");
    printf("%s,%s,%.17g,%zu,%zu,%llu,%llu,%.17g,%.17g,%.17g,%.17g,%.17g,"
           "%.17g,%.17g,%zu,%d\n",
           std::string(FoChannelName(config->channel)).c_str(),
           std::string(AttackKindName(config->attack.kind)).c_str(),
           config->attack.fraction, t, config->n,
           static_cast<unsigned long long>(r.honest_reports),
           static_cast<unsigned long long>(r.attacked_reports),
           r.estimate[t], r.clean_truth[t], r.target_gain, r.mitigated_gain,
           r.defense.sum_deviation, r.defense.negative_mass,
           r.defense.max_spike_z, r.defense.spike_bucket,
           r.defense.flagged ? 1 : 0);
    return 0;
  }
  printf("fo-attack channel=%s kind=%s fraction=%g target=%zu\n",
         std::string(FoChannelName(config->channel)).c_str(),
         std::string(AttackKindName(config->attack.kind)).c_str(),
         config->attack.fraction, t);
  printf("  n=%zu honest=%llu attacked=%llu domain=%zu eps=%g shards=%zu "
         "seed=%llu\n",
         config->n, static_cast<unsigned long long>(r.honest_reports),
         static_cast<unsigned long long>(r.attacked_reports), config->domain,
         config->epsilon, config->shards,
         static_cast<unsigned long long>(config->seed));
  printf("  est[target]=%.6f clean[target]=%.6f atk_gain=%.6f "
         "mitigated_gain=%.6f\n",
         r.estimate[t], r.clean_truth[t], r.target_gain, r.mitigated_gain);
  printf("  defense: sum_dev=%.6f neg_mass=%.6f spike_z=%.2f "
         "spike_bucket=%zu flagged=%s\n",
         r.defense.sum_deviation, r.defense.negative_mass,
         r.defense.max_spike_z, r.defense.spike_bucket,
         r.defense.flagged ? "yes" : "no");
  return 0;
}

bool IsBuiltin(const std::string& name) {
  for (const std::string& builtin : BuiltinScenarioNames()) {
    if (name == builtin) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  if (!ParseCli(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  if (flags.list) {
    for (const std::string& name : BuiltinScenarioNames()) {
      printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (!flags.attack.empty()) return RunAttackMode(flags);

  Result<ScenarioConfig> config = IsBuiltin(flags.scenario)
                                      ? BuiltinScenario(flags.scenario)
                                      : LoadScenarioFile(flags.scenario);
  if (!config.ok()) {
    fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 1;
  }
  if (flags.has_seed) config->seed = flags.seed;
  config->threads = flags.threads;
  if (flags.wire) config->wire_checkpoints = true;
  if (!flags.incremental.empty()) {
    if (flags.incremental == "off") {
      config->incremental = IncrementalMode::kOff;
      config->half_life = 0.0;
    } else if (flags.incremental == "warm") {
      config->incremental = IncrementalMode::kWarm;
    } else if (flags.incremental == "minibatch") {
      config->incremental = IncrementalMode::kMiniBatch;
    } else {
      fprintf(stderr, "--incremental must be off, warm, or minibatch\n");
      return 2;
    }
  }
  if (flags.half_life > 0.0) config->half_life = flags.half_life;
  if (!flags.defense.empty()) {
    if (flags.defense == "off") {
      config->defense = false;
    } else if (flags.defense == "consistency") {
      config->defense = true;
    } else {
      fprintf(stderr, "--defense must be off or consistency\n");
      return 2;
    }
  }
  if (flags.defense_threshold > 0.0) {
    config->defense_options.spike_z_threshold = flags.defense_threshold;
  }
  const Status valid = ValidateScenario(config.value());
  if (!valid.ok()) {
    fprintf(stderr, "error: %s\n", valid.ToString().c_str());
    return 1;
  }

  if (flags.validate) {
    // LoadScenarioFile/BuiltinScenario already ran ValidateScenario; report
    // the parsed shape and exit without collecting anything (used by
    // tools/check_docs.py to keep documented examples loadable).
    printf("valid: scenario=%s d=%zu shards=%zu phases=%zu\n",
           config->name.c_str(), config->d, config->shards,
           config->phases.size());
    return 0;
  }

  Result<ScenarioResult> result = RunScenario(config.value());
  if (!result.ok()) {
    fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // The inc_*/atk_*/def_* columns appear only when their feature is on, so
  // default outputs stay byte-identical to previous releases (CI diffs
  // them).
  const bool inc = config->incremental != IncrementalMode::kOff;
  bool atk = false;
  for (const ScenarioPhase& phase : config->phases) {
    if (phase.attack.kind != AttackKind::kNone) atk = true;
  }
  const bool def = config->defense;
  if (flags.csv) {
    printf(
        "phase,checkpoint,epsilon,group_reports,total_reports,"
        "wasserstein,ks,em_iterations,em_converged%s%s%s\n",
        inc ? ",inc_wasserstein,inc_ks,inc_iterations,inc_total_iterations"
            : "",
        atk ? ",atk_reports,atk_gain" : "",
        def ? ",def_spike_z,def_spike_bucket,def_flagged" : "");
  } else {
    printf("scenario=%s seed=%llu d=%zu shards=%zu phases=%zu\n",
           config->name.c_str(),
           static_cast<unsigned long long>(config->seed), config->d,
           config->shards, config->phases.size());
    printf("%-12s %4s %7s %10s %10s %12s %12s %6s %s", "phase", "ckpt",
           "eps", "group_n", "total_n", "wasserstein", "ks", "iters", "conv");
    if (inc) {
      printf(" %12s %12s %9s %9s", "inc_wass", "inc_ks", "inc_iters",
             "inc_total");
    }
    if (atk) printf(" %10s %10s", "atk_n", "atk_gain");
    if (def) printf(" %9s %8s %7s", "def_z", "def_bkt", "def_flag");
    printf("\n");
  }
  for (const ScenarioCheckpoint& c : result->checkpoints) {
    if (flags.csv) {
      printf("%s,%zu,%.17g,%llu,%llu,%.17g,%.17g,%zu,%d", c.phase.c_str(),
             c.checkpoint_index, c.epsilon,
             static_cast<unsigned long long>(c.group_reports),
             static_cast<unsigned long long>(c.total_reports), c.wasserstein,
             c.ks, c.em_iterations, c.em_converged ? 1 : 0);
      if (inc) {
        printf(",%.17g,%.17g,%zu,%zu", c.inc_wasserstein, c.inc_ks,
               c.inc_em_iterations, c.inc_total_iterations);
      }
      if (atk) {
        printf(",%llu,%.17g", static_cast<unsigned long long>(c.atk_reports),
               c.atk_gain);
      }
      if (def) {
        printf(",%.17g,%zu,%d", c.def_spike_z, c.def_spike_bucket,
               c.def_flagged ? 1 : 0);
      }
      printf("\n");
    } else {
      printf("%-12s %4zu %7.3f %10llu %10llu %12.6f %12.6f %6zu %s",
             c.phase.c_str(), c.checkpoint_index, c.epsilon,
             static_cast<unsigned long long>(c.group_reports),
             static_cast<unsigned long long>(c.total_reports), c.wasserstein,
             c.ks, c.em_iterations, c.em_converged ? "yes" : "no");
      if (inc) {
        printf(" %12.6f %12.6f %9zu %9zu", c.inc_wasserstein, c.inc_ks,
               c.inc_em_iterations, c.inc_total_iterations);
      }
      if (atk) {
        printf(" %10llu %10.6f",
               static_cast<unsigned long long>(c.atk_reports), c.atk_gain);
      }
      if (def) {
        printf(" %9.2f %8zu %7s", c.def_spike_z, c.def_spike_bucket,
               c.def_flagged ? "yes" : "no");
      }
      printf("\n");
    }
  }
  if (flags.dump && !result->checkpoints.empty()) {
    const ScenarioCheckpoint& last = result->checkpoints.back();
    printf("\nfinal estimate (phase=%s checkpoint=%zu):\n", last.phase.c_str(),
           last.checkpoint_index);
    printf("bucket,estimate,truth\n");
    for (size_t i = 0; i < last.estimate.size(); ++i) {
      printf("%zu,%.8e,%.8e\n", i, last.estimate[i], last.truth[i]);
    }
  }
  return 0;
}
