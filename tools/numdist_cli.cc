// numdist — command-line distribution estimation under LDP.
//
// Reads a numeric column from a file, simulates the client-side LDP
// randomization for every row, reconstructs the distribution server-side
// with the chosen method, and prints the histogram plus summary statistics.
//
//   numdist --input=salaries.csv --column=2 --min=0 --max=524288
//           --epsilon=1.0 --buckets=1024 --method=sw-ems [--csv] [--seed=S]
//           [--threads=W]
//
// Methods: sw-ems (default), sw-em, hh-admm, cfo-16, cfo-32, cfo-64.
// Aggregation shards the report stream across worker threads
// (protocol/sharded.h); the result is identical for any thread count.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cli_common.h"
#include "common/rng.h"
#include "data/loader.h"
#include "eval/method.h"
#include "metrics/queries.h"
#include "protocol/sharded.h"

using namespace numdist;
using numdist::tools::FlagValue;

namespace {

struct CliFlags {
  std::string input;
  size_t column = 0;
  char delimiter = ',';
  bool skip_header = false;
  double min_value = 0.0;
  double max_value = 1.0;
  double epsilon = 1.0;
  size_t buckets = 256;
  std::string method = "sw-ems";
  bool csv = false;
  uint64_t seed = 1;
  size_t threads = 0;  // shard workers; 0 = hardware concurrency
};

void Usage() {
  fprintf(stderr,
          "usage: numdist --input=FILE [--column=C] [--delimiter=,]\n"
          "               [--skip-header] [--min=LO] [--max=HI]\n"
          "               [--epsilon=E] [--buckets=D]\n"
          "               [--method=sw-ems|sw-em|hh-admm|cfo-16|cfo-32|cfo-64]\n"
          "               [--csv] [--seed=S] [--threads=W]\n");
}

bool ParseCli(int argc, char** argv, CliFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = FlagValue(arg, "--input=")) {
      flags->input = v;
    } else if (const char* v = FlagValue(arg, "--column=")) {
      flags->column = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--delimiter=")) {
      flags->delimiter = v[0];
    } else if (arg == "--skip-header") {
      flags->skip_header = true;
    } else if (const char* v = FlagValue(arg, "--min=")) {
      flags->min_value = atof(v);
    } else if (const char* v = FlagValue(arg, "--max=")) {
      flags->max_value = atof(v);
    } else if (const char* v = FlagValue(arg, "--epsilon=")) {
      flags->epsilon = atof(v);
    } else if (const char* v = FlagValue(arg, "--buckets=")) {
      flags->buckets = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--method=")) {
      flags->method = v;
    } else if (arg == "--csv") {
      flags->csv = true;
    } else if (const char* v = FlagValue(arg, "--seed=")) {
      flags->seed = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--threads=")) {
      flags->threads = static_cast<size_t>(atoll(v));
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return !flags->input.empty();
}

std::unique_ptr<DistributionMethod> ResolveMethod(const std::string& name) {
  if (name == "sw-ems") return MakeSwEmsMethod();
  if (name == "sw-em") return MakeSwEmMethod();
  if (name == "hh-admm") return MakeHhAdmmMethod();
  if (name == "cfo-16") return MakeCfoBinningMethod(16);
  if (name == "cfo-32") return MakeCfoBinningMethod(32);
  if (name == "cfo-64") return MakeCfoBinningMethod(64);
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  if (!ParseCli(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  const auto method = ResolveMethod(flags.method);
  if (!method) {
    fprintf(stderr, "unknown method: %s\n", flags.method.c_str());
    Usage();
    return 2;
  }

  LoadOptions load;
  load.column = flags.column;
  load.delimiter = flags.delimiter;
  load.skip_header = flags.skip_header;
  load.min_value = flags.min_value;
  load.max_value = flags.max_value;
  Result<std::vector<double>> values = LoadNumericFile(flags.input, load);
  if (!values.ok()) {
    fprintf(stderr, "error: %s\n", values.status().ToString().c_str());
    return 1;
  }
  fprintf(stderr, "loaded %zu values from %s\n", values.value().size(),
          flags.input.c_str());

  Result<ProtocolPtr> protocol =
      method->MakeProtocol(flags.epsilon, flags.buckets);
  if (!protocol.ok()) {
    fprintf(stderr, "error: %s\n", protocol.status().ToString().c_str());
    return 1;
  }
  ShardOptions shard_opts;
  shard_opts.threads = flags.threads;
  Result<MethodOutput> output = RunProtocolSharded(
      *protocol.value(), values.value(), flags.seed, shard_opts);
  if (!output.ok()) {
    fprintf(stderr, "error: %s\n", output.status().ToString().c_str());
    return 1;
  }
  const std::vector<double>& dist = output->distribution;

  const double span = flags.max_value - flags.min_value;
  if (flags.csv) {
    printf("bucket_lo,bucket_hi,probability\n");
    for (size_t i = 0; i < dist.size(); ++i) {
      const double lo = flags.min_value + span * i / dist.size();
      const double hi = flags.min_value + span * (i + 1) / dist.size();
      printf("%.6g,%.6g,%.8e\n", lo, hi, dist[i]);
    }
    return 0;
  }

  printf("method=%s epsilon=%.3f buckets=%zu n=%zu\n", flags.method.c_str(),
         flags.epsilon, flags.buckets, values.value().size());
  printf("estimated mean     : %.6g\n",
         flags.min_value + span * HistMean(dist));
  printf("estimated stddev   : %.6g\n",
         span * std::sqrt(HistVariance(dist)));
  for (double beta : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    printf("estimated q%-4.0f    : %.6g\n", beta * 100,
           flags.min_value + span * Quantile(dist, beta));
  }
  // Compact 16-bin sketch of the estimated distribution.
  const size_t sketch_bins = 16;
  const size_t chunk = dist.size() / sketch_bins;
  printf("\ndistribution sketch (16 bins):\n");
  double peak = 0.0;
  std::vector<double> coarse(sketch_bins, 0.0);
  for (size_t i = 0; i < chunk * sketch_bins; ++i) {
    coarse[i / chunk] += dist[i];
  }
  for (double c : coarse) peak = std::max(peak, c);
  for (size_t b = 0; b < sketch_bins; ++b) {
    const double lo = flags.min_value + span * b / sketch_bins;
    const int bars =
        peak > 0 ? static_cast<int>(40.0 * coarse[b] / peak) : 0;
    printf("  %10.4g | %-40.*s %.3f%%\n", lo, bars,
           "########################################", 100.0 * coarse[b]);
  }
  return 0;
}
