#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and warn on regressions.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]
           [--fallback-baseline bench/baseline/BENCH_baseline.json]

Prints one line per benchmark whose real_time regressed by more than the
threshold relative to the baseline, plus a summary. Always exits 0: this is
a warning signal for CI logs, not a gate — micro-bench noise on shared
runners must never block a merge. Benchmarks present in only one file are
reported informationally.

When the baseline file is missing or unreadable (the previous CI run's
artifact expired, or this is the first run on a fresh repository) and
--fallback-baseline is given, the committed baseline is used instead — with
a loud note, so readers know the reference machine differs — rather than
silently skipping the comparison and emitting an empty trajectory.
"""

import argparse
import json
import sys


def load_times(path):
    """name -> (real_time, time_unit) for every benchmark entry."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for entry in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if entry.get("run_type") == "aggregate":
            continue
        times[entry["name"]] = (float(entry["real_time"]),
                                entry.get("time_unit", "ns"))
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that counts as a regression")
    parser.add_argument("--fallback-baseline", default=None,
                        help="committed baseline used (with a note) when "
                             "the artifact baseline is missing")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="warn if the current results contain no entry "
                             "with this name prefix (repeatable) — catches "
                             "a bench binary silently dropping out of the "
                             "artifact chain")
    args = parser.parse_args()

    used_fallback = False
    try:
        baseline = load_times(args.baseline)
    except (OSError, ValueError) as err:
        if args.fallback_baseline is None:
            print(f"compare_bench: cannot read baseline ({err}); skipping")
            return 0
        try:
            baseline = load_times(args.fallback_baseline)
        except (OSError, ValueError) as fallback_err:
            print("compare_bench: no previous artifact "
                  f"({err}) and the committed baseline is unreadable "
                  f"({fallback_err}); skipping")
            return 0
        used_fallback = True
        print("compare_bench: no previous artifact, using committed "
              f"baseline {args.fallback_baseline} — timings come from the "
              "committed reference run, so treat ratios as indicative, "
              "not exact")

    try:
        current = load_times(args.current)
    except (OSError, ValueError) as err:
        print(f"compare_bench: cannot read current results ({err}); skipping")
        return 0

    for prefix in args.require:
        if not any(name.startswith(prefix) for name in current):
            print(f"::warning title=bench coverage::no current entry "
                  f"matches required prefix '{prefix}' — a bench series "
                  f"dropped out of the artifact chain")

    regressions = []
    improvements = []
    for name, (base_t, unit) in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None or base_t <= 0:
            continue
        cur_t = cur[0]
        ratio = cur_t / base_t
        if ratio > 1.0 + args.threshold:
            regressions.append((name, base_t, cur_t, unit, ratio))
        elif ratio < 1.0 - args.threshold:
            improvements.append((name, base_t, cur_t, unit, ratio))

    only_new = sorted(set(current) - set(baseline))
    only_old = sorted(set(baseline) - set(current))

    for name, base_t, cur_t, unit, ratio in regressions:
        print(f"::warning title=bench regression::{name}: "
              f"{base_t:.0f} {unit} -> {cur_t:.0f} {unit} ({ratio:.2f}x)")
    for name, base_t, cur_t, unit, ratio in improvements:
        print(f"improved: {name}: {base_t:.0f} {unit} -> {cur_t:.0f} {unit} "
              f"({ratio:.2f}x)")
    if only_new:
        print(f"new benchmarks (no baseline): {', '.join(only_new)}")
    if only_old and not used_fallback:
        # The committed fallback baseline spans every bench binary, so when
        # comparing one binary's output against it, "missing" entries are
        # expected and not worth reporting.
        print(f"removed benchmarks: {', '.join(only_old)}")

    print(f"compare_bench: {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s), "
          f"{len(baseline)} baseline / {len(current)} current entries "
          f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
