#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and warn on regressions.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]

Prints one line per benchmark whose real_time regressed by more than the
threshold relative to the baseline, plus a summary. Always exits 0: this is
a warning signal for CI logs, not a gate — micro-bench noise on shared
runners must never block a merge. Benchmarks present in only one file are
reported informationally.
"""

import argparse
import json
import sys


def load_times(path):
    """name -> (real_time, time_unit) for every benchmark entry."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for entry in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if entry.get("run_type") == "aggregate":
            continue
        times[entry["name"]] = (float(entry["real_time"]),
                                entry.get("time_unit", "ns"))
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that counts as a regression")
    args = parser.parse_args()

    try:
        baseline = load_times(args.baseline)
        current = load_times(args.current)
    except (OSError, ValueError) as err:
        print(f"compare_bench: cannot compare ({err}); skipping")
        return 0

    regressions = []
    improvements = []
    for name, (base_t, unit) in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None or base_t <= 0:
            continue
        cur_t = cur[0]
        ratio = cur_t / base_t
        if ratio > 1.0 + args.threshold:
            regressions.append((name, base_t, cur_t, unit, ratio))
        elif ratio < 1.0 - args.threshold:
            improvements.append((name, base_t, cur_t, unit, ratio))

    only_new = sorted(set(current) - set(baseline))
    only_old = sorted(set(baseline) - set(current))

    for name, base_t, cur_t, unit, ratio in regressions:
        print(f"::warning title=bench regression::{name}: "
              f"{base_t:.0f} {unit} -> {cur_t:.0f} {unit} ({ratio:.2f}x)")
    for name, base_t, cur_t, unit, ratio in improvements:
        print(f"improved: {name}: {base_t:.0f} {unit} -> {cur_t:.0f} {unit} "
              f"({ratio:.2f}x)")
    if only_new:
        print(f"new benchmarks (no baseline): {', '.join(only_new)}")
    if only_old:
        print(f"removed benchmarks: {', '.join(only_old)}")

    print(f"compare_bench: {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s), "
          f"{len(baseline)} baseline / {len(current)} current entries "
          f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
