// collector_cli — one aggregator process of the distributed collector.
//
// Collector mode (default): read length-prefixed wire frames (report
// chunks from clients and/or sketch frames from other collectors) from
// stdin or --in until EOF, then emit this process's aggregate as one
// length-prefixed sketch frame on stdout or --out:
//
//   report_client ... | collector_cli --method=sw-ems --epsilon=1.0
//       --buckets=64 --out=shard0.sketch
//
// Listen mode (--listen): the same collector as a network server — an
// epoll event loop multiplexing any number of concurrent client
// connections (report_client --connect --connections=N) into one
// aggregate. SIGTERM/SIGINT trigger a graceful drain: stop accepting,
// serve every open connection to EOF, flush, emit the sketch. The result
// is byte-identical to the stdio pipeline over the same frames, for any
// connection interleaving:
//
//   collector_cli --method=sw-ems --epsilon=1.0 --buckets=64
//       --listen=tcp:0 --port-file=port.txt --out=shard0.sketch
//
// --out may itself be an endpoint (tcp:HOST:PORT or unix:PATH): the
// sketch frame is dialed upstream to a coordinator instead of written to
// a file, which is how a collector tree is assembled without shared
// filesystems.
//
// Coordinator mode (--merge): merge sketches, reconstruct, and print the
// estimated distribution (or a range-query grid for range-only methods).
// Sketches come either from files:
//
//   collector_cli --method=sw-ems --epsilon=1.0 --buckets=64
//       --merge=shard0.sketch,shard1.sketch --csv
//
// or over the network (bare --merge with --listen): the coordinator
// accepts sketch frames on its listener and reconstructs after draining —
// --expect-frames=N stops it after N sketches, SIGTERM at any point:
//
//   collector_cli --method=sw-ems --epsilon=1.0 --buckets=64
//       --merge --listen=tcp:7070 --expect-frames=4 --csv
//
// --merge=FILES with --emit-sketch re-emits the merged state as sketch
// frames instead of reconstructing: an interior node of a merge TREE whose
// output feeds another --merge level. Any tree shape over the same shards
// yields a byte-identical root sketch (tests/merge_tree_test.cc).
//
// --wal=PATH makes collector and listen modes durable: the write-ahead log
// (serve/wal.h) is replayed before serving and every accepted frame is
// appended, so a collector SIGKILLed at any byte offset restarts with the
// exact pre-crash state (tests/wal_process_test.cc).
//
// All endpoints must agree on (--method, --epsilon, --buckets): frames
// carrying any other configuration are rejected with a typed error
// (docs/WIRE_FORMAT.md). Merging is exact integer addition, so the
// coordinator's output is bit-identical to a single-process run over the
// same report chunks, in any merge order.
#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli_common.h"
#include "common/bytes.h"
#include "eval/streaming.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/collector.h"
#include "serve/framing.h"
#include "wire/wire.h"

using namespace numdist;
using numdist::tools::Fail;
using numdist::tools::FlagValue;

namespace {

struct CliFlags {
  std::string method = "sw-ems";
  double epsilon = 1.0;
  size_t buckets = 64;
  std::string in_path;   // empty = stdin
  std::string out_path;  // empty = stdout; tcp:/unix: = dial a coordinator
  std::string merge;     // comma-separated sketch files -> coordinator mode
  bool merge_listen = false;  // bare --merge: coordinate over --listen
  std::string listen;    // tcp:PORT / unix:PATH -> event-loop server mode
  std::string port_file; // write the bound endpoint here (tcp:0 discovery)
  uint64_t expect_frames = 0;
  int read_timeout_ms = 0;
  bool csv = false;
  // Live estimation (listen mode only; eval/incremental.h). A cadence of 0
  // on both knobs leaves estimation off entirely.
  uint64_t estimate_every_frames = 0;  // tick after N newly absorbed frames
  int64_t estimate_every_ms = 0;       // ...and/or every T milliseconds
  std::string estimate_mode = "warm";  // warm | minibatch
  double estimate_half_life = 0.0;     // minibatch forgetting (reports)
  size_t estimate_max_iterations = 0;  // per-tick EM budget (0 = default)
  std::string estimate_out;            // snapshot-frame stream per tick
  // Durability (serve/wal.h): replay PATH before serving, append every
  // accepted frame, compact to a checkpoint at clean exit.
  std::string wal_path;
  uint64_t wal_checkpoint_every = 0;  // compact after N appended frames
  bool wal_sync = false;              // fsync after every record
  uint64_t wal_segment_bytes = 0;     // > 0: --wal is a segment directory
  // Fault tolerance (net/server.h): stream absorbed frames to a hot
  // standby, or BE that standby (serve the replication stream, promote
  // on primary death).
  std::string replicate_to;
  bool standby = false;
  // Per-tenant budgets: ID:MAX_REPORTS[:MAX_EPSILON],... (0 = unlimited).
  std::string tenant_budgets;
  // Coordinator file-merge: emit the merged per-tenant sketch frames to
  // --out instead of reconstructing — the composable merge-tree mode.
  bool emit_sketch = false;
};

void Usage() {
  fprintf(stderr,
          "usage: collector_cli --method=M --epsilon=E --buckets=D\n"
          "                     [--in=FILE] [--read-timeout-ms=T]\n"
          "                     [--out=FILE|tcp:HOST:PORT|unix:PATH]\n"
          "       collector_cli ... --listen=tcp:PORT|unix:PATH\n"
          "                     [--port-file=FILE] [--expect-frames=N]\n"
          "       collector_cli ... --merge=a.sketch,b.sketch[,...] [--csv]\n"
          "       collector_cli ... --merge=... --emit-sketch [--out=FILE]\n"
          "       collector_cli ... --merge --listen=tcp:PORT\n"
          "                     --expect-frames=N [--csv]\n"
          "durability (collector + listen modes; serve/wal.h):\n"
          "       --wal=PATH [--wal-checkpoint-every=N] [--wal-sync]\n"
          "       [--wal-segment-bytes=N]   (PATH becomes a segment dir)\n"
          "replication (listen mode; net/server.h):\n"
          "       primary: --replicate-to=tcp:HOST:PORT|unix:PATH\n"
          "       standby: --standby --listen=...   (promotes on primary\n"
          "                death: drains and emits its sketch)\n"
          "multi-tenancy:\n"
          "       --tenant-budget=ID:MAX_REPORTS[:MAX_EPSILON][,...]\n"
          "live estimation (listen mode, sw-ems/sw-em only):\n"
          "       --estimate-every-frames=N and/or --estimate-every-ms=T\n"
          "       [--estimate-mode=warm|minibatch]\n"
          "       [--estimate-half-life=R] [--estimate-max-iterations=K]\n"
          "       [--estimate-out=FILE]   (snapshot frame per tick)\n"
          "methods: sw-ems sw-em cfo-<bins> cfo-grr-<bins> cfo-olh-<bins>\n"
          "         cfo-oue-<bins> hh hh-admm haar-hrr\n");
}

bool ParseCli(int argc, char** argv, CliFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = FlagValue(arg, "--method=")) {
      flags->method = v;
    } else if (const char* v = FlagValue(arg, "--epsilon=")) {
      flags->epsilon = atof(v);
    } else if (const char* v = FlagValue(arg, "--buckets=")) {
      flags->buckets = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--in=")) {
      flags->in_path = v;
    } else if (const char* v = FlagValue(arg, "--out=")) {
      flags->out_path = v;
    } else if (const char* v = FlagValue(arg, "--merge=")) {
      flags->merge = v;
    } else if (arg == "--merge") {
      flags->merge_listen = true;
    } else if (const char* v = FlagValue(arg, "--listen=")) {
      flags->listen = v;
    } else if (const char* v = FlagValue(arg, "--port-file=")) {
      flags->port_file = v;
    } else if (const char* v = FlagValue(arg, "--expect-frames=")) {
      flags->expect_frames = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--read-timeout-ms=")) {
      flags->read_timeout_ms = atoi(v);
    } else if (const char* v = FlagValue(arg, "--estimate-every-frames=")) {
      flags->estimate_every_frames = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--estimate-every-ms=")) {
      flags->estimate_every_ms = atoll(v);
    } else if (const char* v = FlagValue(arg, "--estimate-mode=")) {
      flags->estimate_mode = v;
    } else if (const char* v = FlagValue(arg, "--estimate-half-life=")) {
      flags->estimate_half_life = atof(v);
    } else if (const char* v = FlagValue(arg, "--estimate-max-iterations=")) {
      flags->estimate_max_iterations = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--estimate-out=")) {
      flags->estimate_out = v;
    } else if (const char* v = FlagValue(arg, "--wal=")) {
      flags->wal_path = v;
    } else if (const char* v = FlagValue(arg, "--wal-checkpoint-every=")) {
      flags->wal_checkpoint_every = static_cast<uint64_t>(atoll(v));
    } else if (arg == "--wal-sync") {
      flags->wal_sync = true;
    } else if (const char* v = FlagValue(arg, "--wal-segment-bytes=")) {
      flags->wal_segment_bytes = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--replicate-to=")) {
      flags->replicate_to = v;
    } else if (arg == "--standby") {
      flags->standby = true;
    } else if (const char* v = FlagValue(arg, "--tenant-budget=")) {
      flags->tenant_budgets = v;
    } else if (arg == "--emit-sketch") {
      flags->emit_sketch = true;
    } else if (arg == "--csv") {
      flags->csv = true;
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->merge_listen && flags->listen.empty()) {
    fprintf(stderr, "bare --merge needs --listen (or use --merge=FILES)\n");
    return false;
  }
  if (flags->emit_sketch && flags->merge.empty()) {
    fprintf(stderr, "--emit-sketch needs --merge=FILES\n");
    return false;
  }
  if (!flags->wal_path.empty() && !flags->merge.empty()) {
    fprintf(stderr, "--wal applies to collector/listen modes, not --merge\n");
    return false;
  }
  if (flags->wal_path.empty() &&
      (flags->wal_checkpoint_every > 0 || flags->wal_sync ||
       flags->wal_segment_bytes > 0)) {
    fprintf(stderr,
            "--wal-checkpoint-every/--wal-sync/--wal-segment-bytes "
            "need --wal=PATH\n");
    return false;
  }
  if (!flags->replicate_to.empty() && flags->listen.empty()) {
    fprintf(stderr, "--replicate-to needs --listen (the primary serves "
            "clients while it replicates)\n");
    return false;
  }
  if (flags->standby && flags->listen.empty()) {
    fprintf(stderr, "--standby needs --listen (the replication endpoint "
            "the primary dials)\n");
    return false;
  }
  if (flags->standby && !flags->replicate_to.empty()) {
    fprintf(stderr, "--standby and --replicate-to are mutually exclusive "
            "(chained standbys are not supported)\n");
    return false;
  }
  const bool estimating =
      flags->estimate_every_frames > 0 || flags->estimate_every_ms > 0;
  if (estimating && (flags->listen.empty() || flags->merge_listen)) {
    fprintf(stderr, "live estimation needs collector --listen mode\n");
    return false;
  }
  if (!estimating &&
      (!flags->estimate_out.empty() || flags->estimate_half_life > 0.0 ||
       flags->estimate_max_iterations > 0 || flags->estimate_mode != "warm")) {
    fprintf(stderr,
            "estimate flags need a cadence (--estimate-every-frames "
            "and/or --estimate-every-ms)\n");
    return false;
  }
  if (flags->estimate_mode != "warm" && flags->estimate_mode != "minibatch") {
    fprintf(stderr, "--estimate-mode must be 'warm' or 'minibatch'\n");
    return false;
  }
  if (flags->estimate_mode == "minibatch" &&
      !(flags->estimate_half_life > 0.0)) {
    fprintf(stderr, "--estimate-mode=minibatch needs --estimate-half-life\n");
    return false;
  }
  if (flags->estimate_mode == "warm" && flags->estimate_half_life > 0.0) {
    fprintf(stderr, "--estimate-half-life needs --estimate-mode=minibatch\n");
    return false;
  }
  return true;
}

bool IsEndpointSpec(const std::string& s) {
  return s.rfind("tcp:", 0) == 0 || s.rfind("unix:", 0) == 0;
}

// Parses --tenant-budget=ID:MAX_REPORTS[:MAX_EPSILON][,...]. A cap of 0
// means unlimited on that axis (TenantBudget's convention).
bool ParseTenantBudgets(
    const std::string& spec,
    std::vector<std::pair<uint32_t, serve::TenantBudget>>* out) {
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    serve::TenantBudget budget;
    unsigned long long tenant = 0, max_reports = 0;
    double max_epsilon = 0.0;
    const int matched = sscanf(entry.c_str(), "%llu:%llu:%lf", &tenant,
                               &max_reports, &max_epsilon);
    if (matched < 2 || tenant > 0xffffffffull) {
      fprintf(stderr, "bad --tenant-budget entry '%s'\n", entry.c_str());
      return false;
    }
    budget.max_reports = max_reports;
    budget.max_epsilon = matched >= 3 ? max_epsilon : 0.0;
    out->emplace_back(static_cast<uint32_t>(tenant), budget);
  }
  if (out->empty()) {
    fprintf(stderr, "--tenant-budget holds no entries\n");
    return false;
  }
  return true;
}

// One stderr line summarizing what WAL recovery replayed, including the
// typed torn-tail diagnosis when the previous process died mid-record.
void ReportWalRecovery(const serve::WalReplayStats& stats) {
  fprintf(stderr,
          "wal: recovered %llu frame(s), %llu checkpoint(s), "
          "%llu clean byte(s)\n",
          static_cast<unsigned long long>(stats.frames),
          static_cast<unsigned long long>(stats.checkpoints),
          static_cast<unsigned long long>(stats.clean_bytes));
  if (stats.segments > 0) {
    fprintf(stderr, "wal: %llu segment(s), %llu sequence checkpoint(s)\n",
            static_cast<unsigned long long>(stats.segments),
            static_cast<unsigned long long>(stats.seq_checkpoints));
  }
  if (!stats.tail.ok()) {
    fprintf(stderr, "wal: discarded torn tail: %s\n",
            stats.tail.message().c_str());
  }
}

// Folds every length-prefixed frame of a collector output file into the
// session — a file may hold several concatenated sketch frames (e.g.
// `cat shard*.sketch > all.sketch`), and silently dropping any of them
// would under-count, so the file is drained to a clean EOF.
Status MergeSketchFile(const std::string& path,
                       serve::CollectorSession* session) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("collector: cannot open '" + path + "'");
  }
  std::string frame;
  bool eof = false;
  size_t frames = 0;
  while (true) {
    NUMDIST_RETURN_NOT_OK(serve::ReadFrame(in, &frame, &eof));
    if (eof) break;
    NUMDIST_RETURN_NOT_OK(session->HandleFrame(frame));
    ++frames;
  }
  if (frames == 0) {
    return Status::InvalidArgument("collector: '" + path +
                                   "' holds no sketch frame");
  }
  return Status::OK();
}

int PrintEstimate(const CliFlags& flags, const wire::MethodSpec& spec,
                  uint64_t num_reports, const MethodOutput& output) {
  if (!output.distribution.empty()) {
    if (flags.csv) {
      // Machine mode: full-precision rows, byte-diffable across merge
      // orders and against the in-process run.
      printf("bucket,probability\n");
      for (size_t i = 0; i < output.distribution.size(); ++i) {
        printf("%zu,%.17g\n", i, output.distribution[i]);
      }
    } else {
      // Human mode: configuration plus summary statistics of the merged
      // estimate (full data via --csv).
      const size_t d = output.distribution.size();
      double mean = 0.0, m2 = 0.0;
      for (size_t i = 0; i < d; ++i) {
        const double mid = (static_cast<double>(i) + 0.5) /
                           static_cast<double>(d);
        mean += output.distribution[i] * mid;
        m2 += output.distribution[i] * mid * mid;
      }
      const double var = std::max(0.0, m2 - mean * mean);
      printf("method=%s reports=%llu buckets=%zu\n",
             wire::MethodSpecName(spec).c_str(),
             static_cast<unsigned long long>(num_reports), d);
      printf("estimated mean=%.6f stddev=%.6f mass[0,0.5)=%.6f\n", mean,
             std::sqrt(var), output.range_query(0.0, 0.5));
    }
  } else {
    // Range-only methods (hh, haar-hrr): a deterministic query grid so
    // coordinator outputs stay diffable.
    const size_t grid = 16;
    if (flags.csv) {
      printf("lo,alpha,mass\n");
      for (size_t i = 0; i < grid; ++i) {
        const double lo = static_cast<double>(i) / grid;
        printf("%.17g,%.17g,%.17g\n", lo, 1.0 / grid,
               output.range_query(lo, 1.0 / grid));
      }
    } else {
      printf("%-8s %-8s %s\n", "lo", "alpha", "mass");
      for (size_t i = 0; i < grid; ++i) {
        const double lo = static_cast<double>(i) / grid;
        printf("%-8.4f %-8.4f %.6f\n", lo, 1.0 / grid,
               output.range_query(lo, 1.0 / grid));
      }
    }
  }
  return 0;
}

Status EmitSketches(const CliFlags& flags,
                    const std::vector<std::string>& sketches);

int RunCoordinator(const CliFlags& flags, serve::CollectorSession* session) {
  std::vector<std::string> paths;
  std::stringstream ss(flags.merge);
  std::string path;
  while (std::getline(ss, path, ',')) {
    if (!path.empty()) paths.push_back(path);
  }
  if (paths.empty()) {
    fprintf(stderr, "--merge needs at least one sketch file\n");
    return 2;
  }
  for (const std::string& p : paths) {
    const Status st = MergeSketchFile(p, session);
    if (!st.ok()) return Fail(st);
  }
  if (flags.emit_sketch) {
    // Interior node of a merge tree: re-emit the merged state as sketch
    // frames (per-tenant, lossless) instead of reconstructing, so the
    // output file feeds another --merge level or a --listen coordinator.
    Result<std::vector<std::string>> sketches = session->EncodeSketches();
    if (!sketches.ok()) return Fail(sketches.status());
    const Status emitted = EmitSketches(flags, sketches.value());
    if (!emitted.ok()) return Fail(emitted);
    fprintf(stderr, "merged %zu sketch file(s) into %zu frame(s), "
            "%llu reports\n",
            paths.size(), sketches.value().size(),
            static_cast<unsigned long long>(session->num_reports()));
    return 0;
  }
  Result<MethodOutput> output = session->Reconstruct();
  if (!output.ok()) return Fail(output.status());
  fprintf(stderr, "merged %zu sketch(es), %llu reports\n", paths.size(),
          static_cast<unsigned long long>(session->num_reports()));
  return PrintEstimate(flags, session->spec(), session->num_reports(),
                       output.value());
}

// Writes length-prefixed sketch frames either to a local file/stdout or
// upstream over a freshly dialed connection (--out=tcp:/unix:). Multiple
// frames (one per tenant; EncodeSketches) go over one connection / into
// one file, exactly as a serving collector would emit them.
Status EmitSketches(const CliFlags& flags,
                    const std::vector<std::string>& sketches) {
  if (IsEndpointSpec(flags.out_path)) {
    NUMDIST_ASSIGN_OR_RETURN(const net::Endpoint upstream,
                             net::ParseEndpoint(flags.out_path));
    NUMDIST_ASSIGN_OR_RETURN(net::Fd fd, net::Dial(upstream));
    std::string prefixed;
    for (const std::string& sketch : sketches) {
      prefixed.reserve(prefixed.size() + 4 + sketch.size());
      ByteWriter(&prefixed).PutU32(static_cast<uint32_t>(sketch.size()));
      prefixed.append(sketch);
    }
    return net::WriteAll(fd.get(), prefixed);
  }
  std::ofstream file_out;
  if (!flags.out_path.empty()) {
    file_out.open(flags.out_path, std::ios::binary);
    if (!file_out) {
      return Status::InvalidArgument("collector: cannot open '" +
                                     flags.out_path + "'");
    }
  }
  std::ostream& out = flags.out_path.empty() ? std::cout : file_out;
  for (const std::string& sketch : sketches) {
    NUMDIST_RETURN_NOT_OK(serve::WriteFrame(out, sketch));
  }
  out.flush();
  if (!out) return Status::Internal("collector: sketch write failed");
  return Status::OK();
}

Status EmitSketch(const CliFlags& flags, const std::string& sketch) {
  return EmitSketches(flags, {sketch});
}

// Shared between RunServer and the estimate sink closure: the sink is
// handed to CollectorServer::Make before the server (and therefore its
// estimator) exists, so the snapshot-frame scratch aggregator is attached
// right after Make succeeds.
struct EstimateSinkState {
  std::ofstream out;     // open iff --estimate-out was given
  bool out_failed = false;
  double epsilon = 0.0;
  // Reused per tick: Reset + MergeCounts(tick.totals) rebuilds the live
  // counts so EncodeSnapshotFrame emits exactly the state the estimate
  // was computed from.
  std::optional<StreamingAggregator> scratch;
};

// Per-tick stderr progress line plus (optionally) one wire snapshot frame
// appended to --estimate-out. A write failure disables the file stream but
// never the server: live estimation is observability, not the aggregate.
void HandleEstimateTick(EstimateSinkState* est, const net::EstimateTick& tick) {
  fprintf(stderr,
          "estimate tick %llu: reports=%llu frames=%llu iterations=%zu "
          "(%zu total over %zu run(s)) log-likelihood=%.6f\n",
          static_cast<unsigned long long>(tick.tick),
          static_cast<unsigned long long>(tick.reports),
          static_cast<unsigned long long>(tick.frames), tick.em.iterations,
          tick.checkpoint.total_iterations, tick.checkpoint.runs,
          tick.em.log_likelihood);
  if (!est->out.is_open() || est->out_failed || !est->scratch.has_value()) {
    return;
  }
  est->scratch->Reset();
  Status st = est->scratch->MergeCounts(tick.totals, tick.reports);
  std::string payload;
  if (st.ok()) {
    st = wire::EncodeSnapshotFrame(est->epsilon, *est->scratch, &payload);
  }
  if (st.ok()) {
    st = serve::WriteFrame(est->out, payload);
    est->out.flush();
    if (st.ok() && !est->out) {
      st = Status::Internal("collector: estimate frame write failed");
    }
  }
  if (!st.ok()) {
    fprintf(stderr, "warning: --estimate-out disabled: %s\n",
            st.message().c_str());
    est->out_failed = true;
  }
}

net::CollectorServer* g_server = nullptr;

void OnDrainSignal(int) {
  // RequestDrain is async-signal-safe: an atomic store + one eventfd
  // write. The event loop notices on its next wakeup.
  if (g_server != nullptr) g_server->RequestDrain();
}

int RunServer(const CliFlags& flags, const wire::MethodSpec& spec) {
  net::ServerOptions options;
  options.expect_frames = flags.expect_frames;
  options.wal_path = flags.wal_path;
  options.wal.checkpoint_every_frames = flags.wal_checkpoint_every;
  options.wal.sync_each_record = flags.wal_sync;
  options.wal.segment_bytes = flags.wal_segment_bytes;
  options.replicate_to = flags.replicate_to;
  if (flags.standby) {
    // A standby serves the primary's replication stream like any other
    // client stream, but never writes back into it (acks from a standby
    // would sit unread in the dying primary's receive queue and turn its
    // final close into an RST that discards the tail), and it promotes —
    // drains and emits its sketch — the moment the stream ends.
    options.send_acks = false;
    options.drain_on_disconnect = true;
  }
  options.estimate_every_frames = flags.estimate_every_frames;
  options.estimate_every_ms = flags.estimate_every_ms;
  if (flags.estimate_mode == "minibatch") {
    options.estimate_half_life = flags.estimate_half_life;
  }
  options.estimate_max_iterations = flags.estimate_max_iterations;
  auto est = std::make_shared<EstimateSinkState>();
  const bool estimating =
      flags.estimate_every_frames > 0 || flags.estimate_every_ms > 0;
  if (estimating) {
    if (!flags.estimate_out.empty()) {
      est->out.open(flags.estimate_out, std::ios::binary);
      if (!est->out) {
        fprintf(stderr, "error: cannot open '%s'\n",
                flags.estimate_out.c_str());
        return 1;
      }
    }
    est->epsilon = flags.epsilon;
    options.estimate_sink = [est](const net::EstimateTick& tick) {
      HandleEstimateTick(est.get(), tick);
    };
  }
  Result<std::unique_ptr<net::CollectorServer>> server =
      net::CollectorServer::Make(spec, options);
  if (!server.ok()) return Fail(server.status());
  if (!flags.wal_path.empty()) {
    ReportWalRecovery(server.value()->wal_recovery());
  }
  if (!flags.tenant_budgets.empty()) {
    std::vector<std::pair<uint32_t, serve::TenantBudget>> budgets;
    if (!ParseTenantBudgets(flags.tenant_budgets, &budgets)) return 2;
    for (const auto& [tenant, budget] : budgets) {
      server.value()->SetTenantBudget(tenant, budget);
    }
  }
  if (estimating) {
    est->scratch.emplace(
        StreamingAggregator::ForEstimator(server.value()->live_estimator()));
  }

  Result<net::Endpoint> listen_at = net::ParseEndpoint(flags.listen);
  if (!listen_at.ok()) return Fail(listen_at.status());
  Result<net::Endpoint> bound = server.value()->AddListener(listen_at.value());
  if (!bound.ok()) return Fail(bound.status());
  const std::string bound_name = net::EndpointName(bound.value());
  if (!flags.port_file.empty()) {
    std::ofstream pf(flags.port_file, std::ios::trunc);
    pf << bound_name << "\n";
    if (!pf) {
      fprintf(stderr, "error: cannot write '%s'\n", flags.port_file.c_str());
      return 1;
    }
  }
  fprintf(stderr, "collector listening on %s\n", bound_name.c_str());

  g_server = server.value().get();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnDrainSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  const Status run = server.value()->Run();
  g_server = nullptr;
  if (!run.ok()) return Fail(run);

  const net::ServerStats& stats = server.value()->stats();
  fprintf(stderr,
          "collector drained: %llu connection(s), %llu frame(s), "
          "%llu report(s), %llu pause(s) (%s)\n",
          static_cast<unsigned long long>(stats.connections_accepted),
          static_cast<unsigned long long>(stats.frames_absorbed),
          static_cast<unsigned long long>(server.value()->num_reports()),
          static_cast<unsigned long long>(stats.pauses),
          wire::MethodSpecName(spec).c_str());
  if (stats.connection_errors > 0) {
    fprintf(stderr,
            "warning: %llu connection(s) dropped on error; first: %s\n",
            static_cast<unsigned long long>(stats.connection_errors),
            stats.first_error.message().c_str());
  }
  if (stats.acks_queued > 0 || stats.duplicates > 0 ||
      stats.frames_replicated > 0) {
    fprintf(stderr,
            "fault tolerance: %llu ack(s), %llu duplicate(s) dropped, "
            "%llu frame(s) replicated\n",
            static_cast<unsigned long long>(stats.acks_queued),
            static_cast<unsigned long long>(stats.duplicates),
            static_cast<unsigned long long>(stats.frames_replicated));
  }
  if (estimating) {
    fprintf(stderr, "live estimation: %llu tick(s) (%s mode)\n",
            static_cast<unsigned long long>(stats.estimate_ticks),
            flags.estimate_mode.c_str());
  }

  if (flags.merge_listen) {
    // Network coordinator: the listener fed us sketch frames; reconstruct
    // and print instead of re-encoding a sketch.
    Result<MethodOutput> output = server.value()->Reconstruct();
    if (!output.ok()) return Fail(output.status());
    return PrintEstimate(flags, spec, server.value()->num_reports(),
                         output.value());
  }
  Result<std::string> sketch = server.value()->EncodeSketch();
  if (!sketch.ok()) return Fail(sketch.status());
  const Status emitted = EmitSketch(flags, sketch.value());
  if (!emitted.ok()) return Fail(emitted);
  return 0;
}

int RunCollector(const CliFlags& flags, serve::CollectorSession* session) {
  // Stdio/pipe/file mode serves through the same poll-driven loop the
  // network server uses per connection, which is what gives --in streams
  // a mid-frame read deadline; output bytes are identical to ServeStream.
  if (!flags.wal_path.empty()) {
    serve::WalOptions wal_options;
    wal_options.checkpoint_every_frames = flags.wal_checkpoint_every;
    wal_options.sync_each_record = flags.wal_sync;
    wal_options.segment_bytes = flags.wal_segment_bytes;
    Result<serve::WalReplayStats> recovered =
        session->RecoverAndAttachWal(flags.wal_path, wal_options);
    if (!recovered.ok()) return Fail(recovered.status());
    ReportWalRecovery(recovered.value());
  }
  int in_fd = STDIN_FILENO;
  net::Fd file_fd;
  if (!flags.in_path.empty()) {
    file_fd.reset(open(flags.in_path.c_str(), O_RDONLY | O_CLOEXEC));
    if (!file_fd.valid()) {
      fprintf(stderr, "error: cannot open '%s'\n", flags.in_path.c_str());
      return 1;
    }
    in_fd = file_fd.get();
  }
  std::ofstream file_out;
  if (!flags.out_path.empty() && !IsEndpointSpec(flags.out_path)) {
    file_out.open(flags.out_path, std::ios::binary);
    if (!file_out) {
      fprintf(stderr, "error: cannot open '%s'\n", flags.out_path.c_str());
      return 1;
    }
  }
  serve::ServeFdOptions options;
  options.read_timeout_ms = flags.read_timeout_ms;
  if (IsEndpointSpec(flags.out_path)) {
    // Absorb locally, then dial the sketch upstream.
    std::ostringstream sink;
    const Status st = serve::ServeFd(in_fd, sink, session, options);
    if (!st.ok()) return Fail(st);
    Result<std::string> sketch = session->EncodeSketch();
    if (!sketch.ok()) return Fail(sketch.status());
    const Status emitted = EmitSketch(flags, sketch.value());
    if (!emitted.ok()) return Fail(emitted);
  } else {
    std::ostream& out = flags.out_path.empty() ? std::cout : file_out;
    const Status st = serve::ServeFd(in_fd, out, session, options);
    if (!st.ok()) return Fail(st);
  }
  if (session->has_wal()) {
    // Clean EOF: compact the log to one checkpoint of the final state so
    // a restart replays a single record instead of the whole stream.
    const Status compacted = session->CompactWal();
    if (!compacted.ok()) return Fail(compacted);
  }
  fprintf(stderr, "collector absorbed %llu reports (%s)\n",
          static_cast<unsigned long long>(session->num_reports()),
          wire::MethodSpecName(session->spec()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  if (!ParseCli(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  // A coordinator that exits mid-handshake must surface as a typed write
  // error on this end, not a SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);
  Result<wire::MethodSpec> spec = wire::ParseMethodSpec(
      flags.method, flags.epsilon, static_cast<uint32_t>(flags.buckets));
  if (!spec.ok()) return Fail(spec.status());

  if (!flags.listen.empty()) {
    return RunServer(flags, spec.value());
  }
  Result<serve::CollectorSession> session =
      serve::CollectorSession::Make(spec.value());
  if (!session.ok()) return Fail(session.status());
  if (!flags.tenant_budgets.empty()) {
    std::vector<std::pair<uint32_t, serve::TenantBudget>> budgets;
    if (!ParseTenantBudgets(flags.tenant_budgets, &budgets)) return 2;
    for (const auto& [tenant, budget] : budgets) {
      session.value().SetTenantBudget(tenant, budget);
    }
  }
  if (!flags.merge.empty()) {
    return RunCoordinator(flags, &session.value());
  }
  return RunCollector(flags, &session.value());
}
