// collector_cli — one aggregator process of the distributed collector.
//
// Collector mode (default): read length-prefixed wire frames (report
// chunks from clients and/or sketch frames from other collectors) from
// stdin or --in until EOF, then emit this process's aggregate as one
// length-prefixed sketch frame on stdout or --out:
//
//   report_client ... | collector_cli --method=sw-ems --epsilon=1.0
//       --buckets=64 --out=shard0.sketch
//
// Coordinator mode (--merge): read sketch frame files produced by
// collector processes, merge them, reconstruct, and print the estimated
// distribution (or a range-query grid for the range-only methods):
//
//   collector_cli --method=sw-ems --epsilon=1.0 --buckets=64
//       --merge=shard0.sketch,shard1.sketch --csv
//
// All endpoints must agree on (--method, --epsilon, --buckets): frames
// carrying any other configuration are rejected with a typed error
// (docs/WIRE_FORMAT.md). Merging is exact integer addition, so the
// coordinator's output is bit-identical to a single-process run over the
// same report chunks, in any merge order.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "serve/collector.h"
#include "serve/framing.h"
#include "wire/wire.h"

using namespace numdist;
using numdist::tools::Fail;
using numdist::tools::FlagValue;

namespace {

struct CliFlags {
  std::string method = "sw-ems";
  double epsilon = 1.0;
  size_t buckets = 64;
  std::string in_path;   // empty = stdin
  std::string out_path;  // empty = stdout
  std::string merge;     // comma-separated sketch files -> coordinator mode
  bool csv = false;
};

void Usage() {
  fprintf(stderr,
          "usage: collector_cli --method=M --epsilon=E --buckets=D\n"
          "                     [--in=FILE] [--out=FILE]\n"
          "       collector_cli --method=M --epsilon=E --buckets=D\n"
          "                     --merge=a.sketch,b.sketch[,...] [--csv]\n"
          "methods: sw-ems sw-em cfo-<bins> cfo-grr-<bins> cfo-olh-<bins>\n"
          "         cfo-oue-<bins> hh hh-admm haar-hrr\n");
}

bool ParseCli(int argc, char** argv, CliFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = FlagValue(arg, "--method=")) {
      flags->method = v;
    } else if (const char* v = FlagValue(arg, "--epsilon=")) {
      flags->epsilon = atof(v);
    } else if (const char* v = FlagValue(arg, "--buckets=")) {
      flags->buckets = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--in=")) {
      flags->in_path = v;
    } else if (const char* v = FlagValue(arg, "--out=")) {
      flags->out_path = v;
    } else if (const char* v = FlagValue(arg, "--merge=")) {
      flags->merge = v;
    } else if (arg == "--csv") {
      flags->csv = true;
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Folds every length-prefixed frame of a collector output file into the
// session — a file may hold several concatenated sketch frames (e.g.
// `cat shard*.sketch > all.sketch`), and silently dropping any of them
// would under-count, so the file is drained to a clean EOF.
Status MergeSketchFile(const std::string& path,
                       serve::CollectorSession* session) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("collector: cannot open '" + path + "'");
  }
  std::string frame;
  bool eof = false;
  size_t frames = 0;
  while (true) {
    NUMDIST_RETURN_NOT_OK(serve::ReadFrame(in, &frame, &eof));
    if (eof) break;
    NUMDIST_RETURN_NOT_OK(session->HandleFrame(frame));
    ++frames;
  }
  if (frames == 0) {
    return Status::InvalidArgument("collector: '" + path +
                                   "' holds no sketch frame");
  }
  return Status::OK();
}

int RunCoordinator(const CliFlags& flags, serve::CollectorSession* session) {
  std::vector<std::string> paths;
  std::stringstream ss(flags.merge);
  std::string path;
  while (std::getline(ss, path, ',')) {
    if (!path.empty()) paths.push_back(path);
  }
  if (paths.empty()) {
    fprintf(stderr, "--merge needs at least one sketch file\n");
    return 2;
  }
  for (const std::string& p : paths) {
    const Status st = MergeSketchFile(p, session);
    if (!st.ok()) return Fail(st);
  }
  Result<MethodOutput> output = session->Reconstruct();
  if (!output.ok()) return Fail(output.status());

  fprintf(stderr, "merged %zu sketch(es), %llu reports\n", paths.size(),
          static_cast<unsigned long long>(session->num_reports()));
  if (!output->distribution.empty()) {
    if (flags.csv) {
      // Machine mode: full-precision rows, byte-diffable across merge
      // orders and against the in-process run.
      printf("bucket,probability\n");
      for (size_t i = 0; i < output->distribution.size(); ++i) {
        printf("%zu,%.17g\n", i, output->distribution[i]);
      }
    } else {
      // Human mode: configuration plus summary statistics of the merged
      // estimate (full data via --csv).
      const size_t d = output->distribution.size();
      double mean = 0.0, m2 = 0.0;
      for (size_t i = 0; i < d; ++i) {
        const double mid = (static_cast<double>(i) + 0.5) /
                           static_cast<double>(d);
        mean += output->distribution[i] * mid;
        m2 += output->distribution[i] * mid * mid;
      }
      const double var = std::max(0.0, m2 - mean * mean);
      printf("method=%s reports=%llu buckets=%zu\n",
             wire::MethodSpecName(session->spec()).c_str(),
             static_cast<unsigned long long>(session->num_reports()), d);
      printf("estimated mean=%.6f stddev=%.6f mass[0,0.5)=%.6f\n", mean,
             std::sqrt(var), output->range_query(0.0, 0.5));
    }
  } else {
    // Range-only methods (hh, haar-hrr): a deterministic query grid so
    // coordinator outputs stay diffable.
    const size_t grid = 16;
    if (flags.csv) {
      printf("lo,alpha,mass\n");
      for (size_t i = 0; i < grid; ++i) {
        const double lo = static_cast<double>(i) / grid;
        printf("%.17g,%.17g,%.17g\n", lo, 1.0 / grid,
               output->range_query(lo, 1.0 / grid));
      }
    } else {
      printf("%-8s %-8s %s\n", "lo", "alpha", "mass");
      for (size_t i = 0; i < grid; ++i) {
        const double lo = static_cast<double>(i) / grid;
        printf("%-8.4f %-8.4f %.6f\n", lo, 1.0 / grid,
               output->range_query(lo, 1.0 / grid));
      }
    }
  }
  return 0;
}

int RunCollector(const CliFlags& flags, serve::CollectorSession* session) {
  std::ifstream file_in;
  if (!flags.in_path.empty()) {
    file_in.open(flags.in_path, std::ios::binary);
    if (!file_in) {
      fprintf(stderr, "error: cannot open '%s'\n", flags.in_path.c_str());
      return 1;
    }
  }
  std::ofstream file_out;
  if (!flags.out_path.empty()) {
    file_out.open(flags.out_path, std::ios::binary);
    if (!file_out) {
      fprintf(stderr, "error: cannot open '%s'\n", flags.out_path.c_str());
      return 1;
    }
  }
  std::istream& in = flags.in_path.empty() ? std::cin : file_in;
  std::ostream& out = flags.out_path.empty() ? std::cout : file_out;
  const Status st = serve::ServeStream(in, out, session);
  if (!st.ok()) return Fail(st);
  fprintf(stderr, "collector absorbed %llu reports (%s)\n",
          static_cast<unsigned long long>(session->num_reports()),
          wire::MethodSpecName(session->spec()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  if (!ParseCli(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  Result<wire::MethodSpec> spec = wire::ParseMethodSpec(
      flags.method, flags.epsilon, static_cast<uint32_t>(flags.buckets));
  if (!spec.ok()) return Fail(spec.status());
  Result<serve::CollectorSession> session =
      serve::CollectorSession::Make(spec.value());
  if (!session.ok()) return Fail(session.status());

  if (!flags.merge.empty()) {
    return RunCoordinator(flags, &session.value());
  }
  return RunCollector(flags, &session.value());
}
