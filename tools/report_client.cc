// report_client — deterministic client-side load generator for the
// cross-process collector (tools/collector_cli).
//
// Plays the role of a fleet of LDP clients: loads (or synthesizes) private
// values in [0,1], cuts them into fixed-size shards, perturbs each shard
// with its own seeded RNG stream, and writes one length-prefixed wire
// report frame per shard to stdout (or --out):
//
//   report_client --method=sw-ems --epsilon=1.0 --buckets=64
//       --input=values.csv --seed=7   (pipe into collector_cli)
//
// Shard i is always encoded with Rng(ShardSeed(seed, i)) — exactly the
// stream layout of the in-process sharded path (protocol/sharded.h). The
// --offset/--stride flags partition the shard set across client processes
// (process k of P runs --offset=k --stride=P), so the union of frames from
// P processes is byte-for-byte the chunk set a single-process
// AccumulateSharded run would have produced, and the merged estimate is
// bit-identical (tests/wire_process_test.cc).
//
// Network mode (--connect=tcp:HOST:PORT|unix:PATH): instead of writing to
// a stream, frames are round-robined across --connections=N multiplexed
// TCP/Unix connections to a collector_cli --listen server — one process
// emulating a fleet of N concurrent clients. --pace-us=T sleeps T
// microseconds between frames (keeps a stream mid-flight long enough for
// drain/shutdown tests to SIGTERM the collector mid-run).
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/retry.h"
#include "net/socket.h"
#include "data/loader.h"
#include "protocol/sharded.h"
#include "serve/framing.h"
#include "wire/wire.h"

using namespace numdist;
using numdist::tools::Fail;
using numdist::tools::FlagValue;

namespace {

struct CliFlags {
  std::string method = "sw-ems";
  double epsilon = 1.0;
  size_t buckets = 64;
  std::string input;    // numeric file; empty = synthesize --uniform values
  size_t uniform = 0;   // synthesize N grid values in (0,1)
  // Preprocessing window, as in numdist_cli: keep [min, max), map onto
  // [0, 1). Rows outside the window are dropped by the loader.
  double min_value = 0.0;
  double max_value = 1.0;
  uint64_t seed = 42;
  size_t shard_size = 8192;
  size_t offset = 0;    // first shard index this process encodes
  size_t stride = 1;    // total client processes (shard index step)
  std::string out_path; // empty = stdout
  std::string connect;  // tcp:/unix: endpoint -> network mode
  size_t connections = 1;  // concurrent connections in network mode
  uint64_t pace_us = 0;    // sleep between frames (drain-test pacing)
  // Tenant context stamped on every frame (wire::kFlagTenantContext).
  // 0 = the default tenant; such frames stay byte-identical to a client
  // without the flag.
  uint32_t tenant = wire::kDefaultTenant;
  // Fault-tolerant delivery (net/retry.h): sequence-stamped frames, acks,
  // idempotent retransmit with exponential backoff. Needs --connect.
  bool retry = false;
  std::string failover;          // extra endpoints, comma-separated
  uint64_t epoch = 1;            // dedup epoch (reuse across a restart)
  uint32_t retry_max = 0;        // max connection attempts (0 = deadline)
  uint32_t retry_backoff_ms = 5;
  uint32_t retry_deadline_ms = 30000;
  size_t retry_window = 32;      // unacked frames before Send blocks
  // Deterministic fault injection (net/fault.h): --fault-resets=K RSTs
  // the first K connection attempts at Rng(--fault-seed)-drawn offsets
  // in [1, --fault-max-byte).
  uint32_t fault_resets = 0;
  uint64_t fault_seed = 1;
  uint64_t fault_max_byte = 4096;
};

void Usage() {
  fprintf(stderr,
          "usage: report_client --method=M --epsilon=E --buckets=D\n"
          "                     (--input=FILE | --uniform=N) [--seed=S]\n"
          "                     [--min=LO] [--max=HI] [--shard-size=K]\n"
          "                     [--offset=I] [--stride=P] [--out=FILE]\n"
          "                     [--connect=tcp:HOST:PORT|unix:PATH]\n"
          "                     [--connections=N] [--pace-us=T]\n"
          "                     [--tenant=ID]\n"
          "fault-tolerant delivery (needs --connect; net/retry.h):\n"
          "       --retry [--failover=EP[,EP...]] [--epoch=N]\n"
          "       [--retry-window=N] [--retry-max=K]\n"
          "       [--retry-backoff-ms=T] [--retry-deadline-ms=T]\n"
          "fault injection (needs --retry; net/fault.h):\n"
          "       --fault-resets=K [--fault-seed=S] [--fault-max-byte=N]\n"
          "process k of P client processes runs --offset=k --stride=P\n");
}

bool ParseCli(int argc, char** argv, CliFlags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = FlagValue(arg, "--method=")) {
      flags->method = v;
    } else if (const char* v = FlagValue(arg, "--epsilon=")) {
      flags->epsilon = atof(v);
    } else if (const char* v = FlagValue(arg, "--buckets=")) {
      flags->buckets = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--input=")) {
      flags->input = v;
    } else if (const char* v = FlagValue(arg, "--uniform=")) {
      flags->uniform = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--min=")) {
      flags->min_value = atof(v);
    } else if (const char* v = FlagValue(arg, "--max=")) {
      flags->max_value = atof(v);
    } else if (const char* v = FlagValue(arg, "--seed=")) {
      flags->seed = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--shard-size=")) {
      flags->shard_size = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--offset=")) {
      flags->offset = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--stride=")) {
      flags->stride = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--out=")) {
      flags->out_path = v;
    } else if (const char* v = FlagValue(arg, "--connect=")) {
      flags->connect = v;
    } else if (const char* v = FlagValue(arg, "--connections=")) {
      flags->connections = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--pace-us=")) {
      flags->pace_us = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--tenant=")) {
      flags->tenant = static_cast<uint32_t>(atoll(v));
    } else if (arg == "--retry") {
      flags->retry = true;
    } else if (const char* v = FlagValue(arg, "--failover=")) {
      flags->failover = v;
    } else if (const char* v = FlagValue(arg, "--epoch=")) {
      flags->epoch = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--retry-window=")) {
      flags->retry_window = static_cast<size_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--retry-max=")) {
      flags->retry_max = static_cast<uint32_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--retry-backoff-ms=")) {
      flags->retry_backoff_ms = static_cast<uint32_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--retry-deadline-ms=")) {
      flags->retry_deadline_ms = static_cast<uint32_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--fault-resets=")) {
      flags->fault_resets = static_cast<uint32_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--fault-seed=")) {
      flags->fault_seed = static_cast<uint64_t>(atoll(v));
    } else if (const char* v = FlagValue(arg, "--fault-max-byte=")) {
      flags->fault_max_byte = static_cast<uint64_t>(atoll(v));
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->input.empty() == (flags->uniform == 0)) {
    fprintf(stderr, "exactly one of --input / --uniform is required\n");
    return false;
  }
  if (flags->stride == 0 || flags->offset >= flags->stride) {
    fprintf(stderr, "--offset must be < --stride (and --stride > 0)\n");
    return false;
  }
  if (flags->shard_size == 0) {
    fprintf(stderr, "--shard-size must be > 0\n");
    return false;
  }
  if (flags->connections == 0) {
    fprintf(stderr, "--connections must be > 0\n");
    return false;
  }
  if (flags->connections > 1 && flags->connect.empty()) {
    fprintf(stderr, "--connections needs --connect\n");
    return false;
  }
  if (flags->retry && flags->connect.empty()) {
    fprintf(stderr, "--retry needs --connect\n");
    return false;
  }
  if (flags->retry && flags->connections > 1) {
    fprintf(stderr,
            "--retry uses one sequenced connection; drop --connections\n");
    return false;
  }
  if (!flags->retry &&
      (!flags->failover.empty() || flags->fault_resets > 0)) {
    fprintf(stderr, "--failover/--fault-resets need --retry\n");
    return false;
  }
  if (flags->retry && (flags->epoch == 0 || flags->retry_window == 0)) {
    fprintf(stderr, "--epoch and --retry-window must be > 0\n");
    return false;
  }
  return true;
}

}  // namespace

// A collector that closes (or dies) mid-send must surface as a typed
// error and a nonzero exit, never as a silent partial run: the operator
// needs to know which frames may be missing from the aggregate.
int FailMidStream(const Status& status) {
  fprintf(stderr, "error: collector closed the stream mid-send: %s\n",
          status.message().c_str());
  return 1;
}

int main(int argc, char** argv) {
  CliFlags flags;
  if (!ParseCli(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  // A dying collector must produce a typed write error (EPIPE) on this
  // end, not a SIGPIPE kill with no diagnostic.
  std::signal(SIGPIPE, SIG_IGN);
  Result<wire::MethodSpec> spec = wire::ParseMethodSpec(
      flags.method, flags.epsilon, static_cast<uint32_t>(flags.buckets));
  if (!spec.ok()) return Fail(spec.status());
  Result<ProtocolPtr> protocol = wire::MakeProtocolForSpec(spec.value());
  if (!protocol.ok()) return Fail(protocol.status());

  std::vector<double> values;
  if (!flags.input.empty()) {
    LoadOptions load;
    load.min_value = flags.min_value;
    load.max_value = flags.max_value;
    Result<std::vector<double>> loaded = LoadNumericFile(flags.input, load);
    if (!loaded.ok()) return Fail(loaded.status());
    values = std::move(loaded).value();
    // Rows outside [--min, --max) were dropped by the loader; surface the
    // surviving count so a mis-windowed dataset is visible, not silent.
    fprintf(stderr, "loaded %zu value(s) from %s (window [%g, %g))\n",
            values.size(), flags.input.c_str(), flags.min_value,
            flags.max_value);
  } else {
    values.reserve(flags.uniform);
    for (size_t i = 0; i < flags.uniform; ++i) {
      values.push_back((static_cast<double>(i) + 0.5) /
                       static_cast<double>(flags.uniform));
    }
  }

  std::ofstream file_out;
  if (flags.connect.empty() && !flags.out_path.empty()) {
    file_out.open(flags.out_path, std::ios::binary);
    if (!file_out) {
      fprintf(stderr, "error: cannot open '%s'\n", flags.out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = flags.out_path.empty() ? std::cout : file_out;

  std::unique_ptr<net::MultiSender> sender;
  std::unique_ptr<net::RetrySender> retry;
  net::FaultPlan faults;  // must outlive the sender that reads it
  if (flags.retry) {
    std::vector<net::Endpoint> endpoints;
    std::stringstream targets(flags.connect + (flags.failover.empty()
                                                   ? ""
                                                   : "," + flags.failover));
    std::string target;
    while (std::getline(targets, target, ',')) {
      if (target.empty()) continue;
      Result<net::Endpoint> endpoint = net::ParseEndpoint(target);
      if (!endpoint.ok()) return Fail(endpoint.status());
      endpoints.push_back(endpoint.value());
    }
    net::RetryOptions retry_options;
    retry_options.epoch = flags.epoch;
    retry_options.max_attempts = flags.retry_max;
    retry_options.base_backoff_ms = flags.retry_backoff_ms;
    retry_options.total_deadline_ms = flags.retry_deadline_ms;
    retry_options.window = flags.retry_window;
    retry_options.jitter_seed = flags.seed;
    if (flags.fault_resets > 0) {
      faults = net::FaultPlan::Resets(flags.fault_seed, flags.fault_resets,
                                      flags.fault_max_byte);
      retry_options.faults = &faults;
    }
    Result<net::RetrySender> made =
        net::RetrySender::Make(std::move(endpoints), retry_options);
    if (!made.ok()) return Fail(made.status());
    retry = std::make_unique<net::RetrySender>(std::move(made).value());
  } else if (!flags.connect.empty()) {
    Result<net::Endpoint> endpoint = net::ParseEndpoint(flags.connect);
    if (!endpoint.ok()) return Fail(endpoint.status());
    Result<net::MultiSender> made =
        net::MultiSender::Make(endpoint.value(), flags.connections);
    if (!made.ok()) return Fail(made.status());
    sender = std::make_unique<net::MultiSender>(std::move(made).value());
  }

  const size_t num_shards =
      (values.size() + flags.shard_size - 1) / flags.shard_size;
  size_t frames = 0;
  uint64_t reports = 0;
  std::string frame;
  for (size_t i = flags.offset; i < num_shards; i += flags.stride) {
    const size_t begin = i * flags.shard_size;
    const size_t len = std::min(flags.shard_size, values.size() - begin);
    Rng rng(ShardSeed(flags.seed, i));
    Result<std::unique_ptr<ReportChunk>> chunk =
        protocol.value()->EncodePerturbBatch(
            std::span<const double>(values).subspan(begin, len), rng);
    if (!chunk.ok()) return Fail(chunk.status());
    frame.clear();
    const Status enc =
        wire::EncodeReportFrame(spec.value(), flags.tenant, *protocol.value(),
                                *chunk.value(), &frame);
    if (!enc.ok()) return Fail(enc);
    const Status wr = retry    ? retry->Send(frame)
                      : sender ? sender->Send(frame)
                               : serve::WriteFrame(out, frame);
    if (!wr.ok()) return FailMidStream(wr);
    ++frames;
    reports += chunk.value()->num_reports();
    if (flags.pace_us > 0) usleep(static_cast<useconds_t>(flags.pace_us));
  }
  if (retry) {
    const Status fin = retry->Finish();
    if (!fin.ok()) return FailMidStream(fin);
    const net::RetryStats& rs = retry->stats();
    fprintf(stderr,
            "retry: %llu frame(s) acked, %llu retransmit(s), "
            "%llu reconnect(s), %llu injected fault(s)\n",
            static_cast<unsigned long long>(rs.acks),
            static_cast<unsigned long long>(rs.retransmits),
            static_cast<unsigned long long>(rs.reconnects),
            static_cast<unsigned long long>(rs.injected_faults));
  }
  if (sender) {
    const Status fin = sender->Finish();
    if (!fin.ok()) return FailMidStream(fin);
  }
  out.flush();
  if (flags.offset < num_shards) {
    fprintf(stderr,
            "report_client sent %zu frame(s), %llu report(s) "
            "(%s, shards %zu..%zu step %zu of %zu)\n",
            frames, static_cast<unsigned long long>(reports),
            wire::MethodSpecName(spec.value()).c_str(), flags.offset,
            num_shards - 1, flags.stride, num_shards);
  } else {
    fprintf(stderr,
            "report_client sent 0 frames: --offset=%zu is past the last "
            "shard (%zu shard(s) at --shard-size=%zu)\n",
            flags.offset, num_shards, flags.shard_size);
  }
  return 0;
}
