#!/usr/bin/env python3
"""Doc-sync check: documented examples must keep working.

Extracts fenced code blocks from README.md and docs/*.md and verifies them
against the tree, so examples cannot rot:

  ```cpp    compiled with `--cxx -fsyntax-only -std=c++20 -I src` (each
            block must be a self-contained translation unit); add
            `fragment` to the info string (```cpp fragment) to skip a
            block that is intentionally partial;
  ```sh     every `./build/...` binary must correspond to a registered
            CMake executable target whose source exists, and every
            `--flag` passed to it must appear in that source (so a renamed
            tool or flag breaks this check, not a user); `--benchmark_*`
            flags belong to google-benchmark and are whitelisted;
  ```ini    parsed + validated as a scenario file via
            `--scenario-cli <path> --validate` (skipped when the binary
            is unavailable); `fragment` skips here too.

Exit code 0 = all blocks check out; 1 = at least one stale example, each
reported as file:line. Run by CI and by the numdist_check_docs ctest.

Usage:
  python3 tools/check_docs.py --repo . [--cxx g++] \
      [--scenario-cli build/tools/scenario_cli]
"""

import argparse
import os
import re
import shlex
import subprocess
import sys
import tempfile

# google-benchmark parses these itself; they never appear in our sources.
FLAG_WHITELIST_PREFIXES = ("--benchmark_",)

# Shell builtins / external commands whose arguments we do not validate.
IGNORED_COMMANDS = {
    "cmake", "ctest", "cd", "diff", "seq", "awk", "python3", "python",
    "echo", "cat", "for", "do", "done", "git", "mkdir", "rm", "export",
}


def find_blocks(path):
    """Yields (start_line, info_string, [lines]) per fenced block."""
    blocks, info, start, buf = [], None, 0, []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            stripped = line.rstrip("\n")
            if stripped.strip().startswith("```"):
                if info is None:
                    info = stripped.strip()[3:].strip()
                    start = lineno
                    buf = []
                else:
                    blocks.append((start, info, buf))
                    info = None
            elif info is not None:
                buf.append(stripped)
    return blocks


def executable_targets(repo):
    """Maps binary basename -> source path for every registered executable.

    Targets must be derivable from the CMakeLists themselves (explicit
    add_executable, OUTPUT_NAME, set()-list + foreach-ITEMS names) — a
    stray source file that is no longer registered must NOT count, so a
    doc example invoking a deregistered tool fails this check. The only
    directory-driven cases are tests/ and examples/, whose CMakeLists use
    file(GLOB): there, source presence genuinely implies a target.
    """
    targets = {}
    add_exe = re.compile(r"add_executable\(\s*([\w$@{}]+)\s+([\w./]+)")
    out_name = re.compile(
        r"set_target_properties\(\s*(\w+)\s+PROPERTIES\s+OUTPUT_NAME\s+(\w+)")
    set_list = re.compile(r"set\(\s*(\w+)\s+([^)]*)\)", re.MULTILINE)
    foreach_items = re.compile(r"foreach\(\s*\w+\s+IN\s+ITEMS\s+([^)]*)\)")
    for subdir in ("tools", "bench", "examples", "tests"):
        cml = os.path.join(repo, subdir, "CMakeLists.txt")
        if not os.path.exists(cml):
            continue
        text = open(cml, encoding="utf-8").read()
        uses_glob = "file(GLOB" in text
        for match in add_exe.finditer(text):
            name, source = match.groups()
            if "{" in name:  # foreach-generated; names resolved below
                continue
            targets[name] = os.path.join(subdir, source)
        # List-generated targets: set(<var> a b c) / foreach(x IN ITEMS a b)
        # followed by add_executable(${x} ${x}.cc).
        names = []
        for match in set_list.finditer(text):
            names += match.group(2).split()
        for match in foreach_items.finditer(text):
            names += match.group(1).split()
        for name in names:
            source = os.path.join(subdir, name + ".cc")
            if re.fullmatch(r"\w+", name) and os.path.exists(
                    os.path.join(repo, source)):
                targets.setdefault(name, source)
        for match in out_name.finditer(text):
            target, output = match.groups()
            if target in targets:
                targets[output] = targets[target]
        # file(GLOB)-driven directories: every source is a target.
        if uses_glob:
            for entry in sorted(os.listdir(os.path.join(repo, subdir))):
                base, ext = os.path.splitext(entry)
                if subdir == "examples" and ext == ".cpp":
                    targets.setdefault("example_" + base,
                                       os.path.join(subdir, entry))
                elif subdir == "tests" and ext == ".cc":
                    targets.setdefault("numdist_" + base,
                                       os.path.join(subdir, entry))
    return targets


def check_cpp(repo, cxx, block, errors, context):
    start, _, lines = block
    if cxx is None:
        return
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cc", delete=False) as tmp:
        tmp.write("\n".join(lines) + "\n")
        tmp_path = tmp.name
    try:
        cmd = [cxx, "-fsyntax-only", "-std=c++20", "-Wall",
               "-I", os.path.join(repo, "src"), "-x", "c++", tmp_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append("%s: cpp block does not compile:\n%s"
                          % (context, proc.stderr.strip()))
    finally:
        os.unlink(tmp_path)


def shell_segments(lines):
    """Joins continuations, strips comments, splits on |, &&, ;."""
    joined, pending = [], ""
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        joined.append(pending + line)
        pending = ""
    if pending:
        joined.append(pending)
    segments = []
    for line in joined:
        line = line.split(" #", 1)[0]
        for seg in re.split(r"\||&&|;", line):
            seg = seg.strip()
            if seg:
                segments.append(seg)
    return segments


def check_sh(repo, targets, block, errors, context):
    for segment in shell_segments(block[2]):
        try:
            tokens = shlex.split(segment)
        except ValueError as exc:
            errors.append("%s: unparseable sh line '%s' (%s)"
                          % (context, segment, exc))
            continue
        if not tokens:
            continue
        # Shell-keyword prefixes (`do ./build/...` inside a for loop) must
        # not hide the real command from validation.
        while tokens and tokens[0] in ("do", "then", "else", "time"):
            tokens = tokens[1:]
        if not tokens:
            continue
        command = tokens[0]
        # Redirections leak into tokens under shlex; drop obvious ones.
        tokens = [t for t in tokens if t not in (">", ">>", "<")]
        if not (command.startswith("./build/") or
                command.startswith("build/")):
            base = os.path.basename(command)
            if base not in IGNORED_COMMANDS and base not in targets:
                # Unknown non-build command: tolerated (PATH tools), but a
                # ./build-style typo would be caught above.
                pass
            continue
        base = os.path.basename(command)
        if base not in targets:
            errors.append("%s: '%s' is not a registered executable target"
                          % (context, command))
            continue
        source = os.path.join(repo, targets[base])
        if not os.path.exists(source):
            errors.append("%s: source %s for '%s' does not exist"
                          % (context, targets[base], command))
            continue
        source_text = open(source, encoding="utf-8").read()
        # Flag parsing may be factored into a sibling header (e.g. the
        # benches share bench_common.h): follow local quoted includes one
        # hop so shared flags resolve.
        for include in re.findall(r'#include\s+"([^"]+)"', source_text):
            local = os.path.join(os.path.dirname(source), include)
            if os.path.exists(local):
                source_text += open(local, encoding="utf-8").read()
        for token in tokens[1:]:
            if not token.startswith("--"):
                continue
            flag = token.split("=", 1)[0]
            if flag.startswith(FLAG_WHITELIST_PREFIXES):
                continue
            # Boundary-anchored match: '--in' must not pass because
            # '--input=' appears in the source.
            if not re.search(re.escape(flag) + r"(?![\w-])", source_text):
                errors.append("%s: flag '%s' not found in %s"
                              % (context, flag, targets[base]))


def check_scenario(scenario_cli, block, errors, context):
    if scenario_cli is None:
        return
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".scenario", delete=False) as tmp:
        tmp.write("\n".join(block[2]) + "\n")
        tmp_path = tmp.name
    try:
        proc = subprocess.run(
            [scenario_cli, "--validate", "--scenario=" + tmp_path],
            capture_output=True, text=True)
        if proc.returncode != 0:
            errors.append("%s: scenario block rejected by scenario_cli:\n%s"
                          % (context, proc.stderr.strip()))
    finally:
        os.unlink(tmp_path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=".",
                        help="repository root (contains README.md, docs/)")
    parser.add_argument("--cxx", default=None,
                        help="C++ compiler for ```cpp blocks (skip if unset)")
    parser.add_argument("--scenario-cli", default=None,
                        help="scenario_cli binary for ```ini blocks "
                             "(skip if unset/missing)")
    args = parser.parse_args()
    repo = os.path.abspath(args.repo)

    scenario_cli = args.scenario_cli
    if scenario_cli is not None and not os.path.exists(scenario_cli):
        print("note: %s not found; skipping scenario validation"
              % scenario_cli)
        scenario_cli = None

    files = [os.path.join(repo, "README.md")]
    docs_dir = os.path.join(repo, "docs")
    if os.path.isdir(docs_dir):
        files += sorted(
            os.path.join(docs_dir, f) for f in os.listdir(docs_dir)
            if f.endswith(".md"))

    targets = executable_targets(repo)
    errors, checked = [], 0
    for path in files:
        if not os.path.exists(path):
            errors.append("%s: file missing" % path)
            continue
        for block in find_blocks(path):
            start, info, _ = block
            lang = info.split()[0] if info else ""
            if "fragment" in info.split():
                continue
            context = "%s:%d" % (os.path.relpath(path, repo), start)
            if lang == "cpp":
                check_cpp(repo, args.cxx, block, errors, context)
                checked += 1
            elif lang == "sh":
                check_sh(repo, targets, block, errors, context)
                checked += 1
            elif lang == "ini":
                check_scenario(scenario_cli, block, errors, context)
                checked += 1

    if errors:
        print("check_docs: %d stale example(s):" % len(errors))
        for err in errors:
            print("  " + err)
        return 1
    print("check_docs: %d block(s) across %d file(s) are in sync"
          % (checked, len(files)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
